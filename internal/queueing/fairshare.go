package queueing

import "math"

// FairShare is the service discipline of Section 2.2 (introduced in
// [She89]): a preemptive priority discipline in which each
// connection's Poisson stream is split into priority substreams so
// that, at every priority level, no connection has more traffic in
// that level and above than any connection with a larger total rate
// (see Table 1 of the paper and PriorityDecomposition in this
// package).
//
// With rates labelled in increasing order, the cumulative load through
// priority class i is L_i = Σ_k min(r_k, r_i)/μ, and because classes
// 1..i of a preemptive-resume M/M/1 with identical exponential service
// behave exactly as an M/M/1 at load L_i, the queue lengths satisfy
//
//	g(L_i) = Σ_{k<i} Q_k + (N−i+1)·Q_i ,
//
// which is solved here by forward substitution. The recursion is
// triangular — Q_i depends only on rates r_k ≤ r_i — and that
// triangularity is what drives Theorem 4's stability result.
//
// The L_i are order statistics with a closed prefix-sum form: once the
// rates are sorted ascending, min(r_k, r_i) is r_k for the k sorted
// below position i and r_i for everyone else, so
//
//	Σ_k min(r_k, r_i) = Σ_{k<pos(i)} r_(k) + (N−pos(i))·r_i ,
//
// one running sum plus one multiply per connection. The whole
// evaluation is therefore one O(N log N) sort and one O(N) sweep
// instead of the O(N²) rescans the first implementation performed —
// the change that makes 10⁵–10⁶-connection gateways steppable (see
// docs/PERFORMANCE.md, which also states the summation-reordering
// tolerance contract this introduces against the naive double loop).
type FairShare struct{}

// Name implements Discipline.
func (FairShare) Name() string { return "FairShare" }

// Queues implements Discipline. It is the allocating convenience over
// ObserveInto — one code path, so the two can never drift. A key
// property visible in the overload handling: overload caused by
// high-rate connections leaves low-rate connections' queues finite —
// Fair Share protects them — whereas FIFO overload is total.
func (fs FairShare) Queues(r []float64, mu float64) ([]float64, error) {
	q := make([]float64, len(r))
	w := make([]float64, len(r))
	if err := fs.ObserveInto(q, w, r, mu, new(Scratch)); err != nil {
		return nil, err
	}
	return q, nil
}

// SojournTimes implements Discipline. W_i = Q_i/r_i for positive
// rates; a zero-rate probe packet preempts all traffic and sees only
// its own service time 1/μ (the r→0 limit of the recursion). Like
// Queues it delegates to ObserveInto.
func (fs FairShare) SojournTimes(r []float64, mu float64) ([]float64, error) {
	q := make([]float64, len(r))
	w := make([]float64, len(r))
	if err := fs.ObserveInto(q, w, r, mu, new(Scratch)); err != nil {
		return nil, err
	}
	return w, nil
}

// ObserveInto implements InPlace: the forward-substitution recursion
// with the cumulative class loads read from a sorted prefix sum, so
// the whole evaluation is one sort plus one sweep — O(N log N) total,
// zero allocations in steady state. Queues and SojournTimes are thin
// allocating wrappers around this method, which keeps the overload
// semantics (fill +Inf from the first overloaded class, then derive
// every sojourn time from the queues in hand) identical across all
// entry points by construction.
//
//ffc:hotpath
func (fs FairShare) ObserveInto(q, w, r []float64, mu float64, scr *Scratch) error {
	if _, err := validate(r, mu); err != nil {
		return err
	}
	n := len(r)
	idx := scr.order(r)
	sumQ := 0.0
	cum := 0.0 // Σ of sorted rates strictly below this position
	for pos, i := range idx {
		ri := r[i]
		if ri == 0 {
			q[i] = 0
			continue // contributes nothing to the running prefix
		}
		// Cumulative load through connection i's topmost priority
		// class: every lower-sorted connection contributes its whole
		// rate, the n−pos connections from here up contribute r_i.
		load := (cum + float64(n-pos)*ri) / mu
		if load >= 1 {
			// Zero-rate connections sort first, so everything from pos
			// on has a positive rate and an unbounded queue; the
			// lower-rate connections already computed keep finite
			// queues.
			for _, j := range idx[pos:] {
				q[j] = math.Inf(1)
			}
			break
		}
		qi := (G(load) - sumQ) / float64(n-pos)
		if qi < 0 {
			qi = 0 // guard against rounding at vanishing loads
		}
		q[i] = qi
		sumQ += qi
		cum += ri
	}
	for i, ri := range r {
		switch {
		case ri == 0:
			w[i] = 1 / mu
		case math.IsInf(q[i], 1):
			w[i] = math.Inf(1)
		default:
			w[i] = q[i] / ri
		}
	}
	return nil
}

// PriorityRows streams the Table 1 substream decomposition one sorted
// row at a time, so large-N callers never materialize the dense N×N
// table PriorityDecomposition builds. Row pos (ascending rate order)
// has pos+1 priority-class entries; all higher classes are zero by the
// triangular structure of Table 1.
type PriorityRows struct {
	sorted []float64
	perm   []int
	row    []float64
	pos    int
}

// NewPriorityRows prepares the streaming decomposition of r: one sort
// and O(N) setup, O(row length) per Next call, O(N) total memory.
func NewPriorityRows(r []float64) *PriorityRows {
	n := len(r)
	it := &PriorityRows{
		sorted: make([]float64, n),
		perm:   make([]int, n),
		row:    make([]float64, n),
	}
	for i := range it.perm {
		it.perm[i] = i
	}
	stableSortByRate(it.perm, r)
	for pos, i := range it.perm {
		it.sorted[pos] = r[i]
	}
	return it
}

// Perm maps sorted positions back to original indices: Perm()[pos] is
// the original index of the connection emitted pos'th by Next. The
// slice is owned by the iterator; do not modify.
func (it *PriorityRows) Perm() []int { return it.perm }

// Next emits the next row of Table 1: the original connection index
// and its substream rates for priority classes 0..pos (length pos+1,
// class 0 is the highest priority). The row buffer is reused by the
// following Next call — copy to retain. ok is false when the rows are
// exhausted.
func (it *PriorityRows) Next() (orig int, row []float64, ok bool) {
	if it.pos >= len(it.perm) {
		return 0, nil, false
	}
	pos := it.pos
	it.pos++
	row = it.row[:pos+1]
	prev := 0.0
	for j := 0; j <= pos; j++ {
		row[j] = it.sorted[j] - prev
		prev = it.sorted[j]
	}
	return it.perm[pos], row, true
}

// PriorityDecomposition returns the Table 1 substream rate matrix for
// the Fair Share discipline. Rates are first sorted ascending; entry
// [i][j] of the result is the rate sorted-connection i contributes to
// priority class j (class 0 is the highest priority). The returned
// perm maps sorted positions back to the original indices:
// perm[pos] = original index.
//
// Row sums reproduce the sorted rates, and column j is nonzero only
// for connections i ≥ j, exactly the triangular pattern of Table 1.
// The dense table is quadratic in N by nature; large-N callers should
// stream PriorityRows instead.
func PriorityDecomposition(r []float64) (table [][]float64, perm []int) {
	n := len(r)
	it := NewPriorityRows(r)
	table = make([][]float64, n)
	for pos := 0; ; pos++ {
		_, row, ok := it.Next()
		if !ok {
			break
		}
		full := make([]float64, n)
		copy(full, row)
		table[pos] = full
	}
	return table, it.perm
}

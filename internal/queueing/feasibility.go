package queueing

import (
	"fmt"
	"math"
	"sort"
)

// FeasibilityReport records how a queue vector fares against the
// realizability constraints of Section 2.2: any Q(r) realized by a
// non-stalling service discipline must conserve the total queue,
// Σ Q_i = g(Σ ρ_i), and — numbering connections so Q_i/r_i is
// increasing — satisfy the prefix constraints
// Σ_{i≤k} Q_i ≥ g(Σ_{i≤k} ρ_i) for every k < N (no subset of
// connections can do better than having the server to itself).
type FeasibilityReport struct {
	ConservationErr  float64 // |ΣQ − g(ρ_tot)| (0 when both are +Inf)
	PrefixViolations []int   // prefix lengths k whose constraint fails
	Feasible         bool
}

// CheckFeasibility tests the queue vector q against the constraints
// for rates r and service rate mu, with relative tolerance tol.
func CheckFeasibility(r, q []float64, mu, tol float64) (FeasibilityReport, error) {
	rho, err := validate(r, mu)
	if err != nil {
		return FeasibilityReport{}, err
	}
	if len(q) != len(r) {
		return FeasibilityReport{}, fmt.Errorf("queueing: %d queues for %d rates", len(q), len(r))
	}
	var rep FeasibilityReport

	sumQ := 0.0
	for _, qi := range q {
		sumQ += qi
	}
	want := G(rho)
	switch {
	case math.IsInf(sumQ, 1) && math.IsInf(want, 1):
		rep.ConservationErr = 0
	case math.IsInf(sumQ, 1) != math.IsInf(want, 1):
		rep.ConservationErr = math.Inf(1)
	default:
		rep.ConservationErr = math.Abs(sumQ - want)
	}

	// Prefix constraints in increasing Q_i/r_i order. Zero-rate
	// connections (Q must be 0) sort first with ratio 0.
	idx := make([]int, len(r))
	for i := range idx {
		idx[i] = i
	}
	ratio := func(i int) float64 {
		if r[i] == 0 {
			return 0
		}
		return q[i] / r[i]
	}
	sort.SliceStable(idx, func(a, b int) bool { return ratio(idx[a]) < ratio(idx[b]) })

	prefQ, prefRho := 0.0, 0.0
	for k := 0; k < len(idx)-1; k++ {
		i := idx[k]
		prefQ += q[i]
		prefRho += r[i] / mu
		bound := G(prefRho)
		if math.IsInf(bound, 1) && !math.IsInf(prefQ, 1) {
			rep.PrefixViolations = append(rep.PrefixViolations, k+1)
			continue
		}
		if prefQ < bound-tol*(1+math.Abs(bound)) {
			rep.PrefixViolations = append(rep.PrefixViolations, k+1)
		}
	}

	scale := 1.0
	if !math.IsInf(want, 1) {
		scale += math.Abs(want)
	}
	rep.Feasible = rep.ConservationErr <= tol*scale && len(rep.PrefixViolations) == 0
	return rep, nil
}

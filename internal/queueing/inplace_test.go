package queueing

import (
	"math"
	"math/rand"
	"testing"
)

// inPlaceDisciplines are the disciplines with allocation-free paths;
// every one of them must match its own allocating methods bit for bit.
var inPlaceDisciplines = []Discipline{FIFO{}, FairShare{}, NonPreemptiveFairShare{}}

// sameFloat compares float64s treating NaN == NaN and requiring exact
// bit equality otherwise (the in-place paths promise bit-identical
// values, not merely close ones).
func sameFloat(a, b float64) bool {
	if math.IsNaN(a) && math.IsNaN(b) {
		return true
	}
	return math.Float64bits(a) == math.Float64bits(b)
}

// checkObserveInto runs both the allocating and the in-place paths on
// one rate vector and fails on any bitwise difference.
func checkObserveInto(t *testing.T, d Discipline, scr *Scratch, r []float64, mu float64) {
	t.Helper()
	qWant, err := d.Queues(r, mu)
	if err != nil {
		t.Fatalf("%s.Queues(%v): %v", d.Name(), r, err)
	}
	wWant, err := d.SojournTimes(r, mu)
	if err != nil {
		t.Fatalf("%s.SojournTimes(%v): %v", d.Name(), r, err)
	}
	// Poison the buffers so stale values can't masquerade as results.
	q := make([]float64, len(r))
	w := make([]float64, len(r))
	for i := range q {
		q[i] = math.NaN()
		w[i] = math.NaN()
	}
	if err := ObserveInto(d, q, w, r, mu, scr); err != nil {
		t.Fatalf("%s.ObserveInto(%v): %v", d.Name(), r, err)
	}
	for i := range r {
		if !sameFloat(q[i], qWant[i]) {
			t.Errorf("%s: r=%v: queue[%d] = %v, allocating path %v", d.Name(), r, i, q[i], qWant[i])
		}
		if !sameFloat(w[i], wWant[i]) {
			t.Errorf("%s: r=%v: sojourn[%d] = %v, allocating path %v", d.Name(), r, i, w[i], wWant[i])
		}
	}
}

// TestObserveIntoMatchesAllocatingEdgeCases pins the corners: zero
// rates, rate ties (where sort stability decides the priority order),
// partial overload, and total overload.
func TestObserveIntoMatchesAllocatingEdgeCases(t *testing.T) {
	cases := [][]float64{
		{0.5},
		{0, 0.4},
		{0.4, 0},
		{0.3, 0.3, 0.3},          // exact ties
		{0, 0, 0.2},              // multiple zero-rate probes
		{0.1, 0.2, 0.9},          // partial overload under Fair Share (μ=1)
		{0.6, 0.6},               // ρ_tot > 1: total overload
		{2, 3, 5},                // everything overloaded
		{1e-12, 1e-12, 0.5},      // vanishing loads (rounding guard)
		{0.25, 0.25, 0.25, 0.24}, // near-symmetric
	}
	for _, d := range inPlaceDisciplines {
		scr := new(Scratch)
		for _, r := range cases {
			checkObserveInto(t, d, scr, r, 1)
		}
	}
}

// TestObserveIntoMatchesAllocatingRandom sweeps random rate vectors —
// including occasional zeros and overloads — through a single reused
// Scratch, checking that reuse never leaks state between calls.
func TestObserveIntoMatchesAllocatingRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for _, d := range inPlaceDisciplines {
		scr := new(Scratch)
		for trial := 0; trial < 200; trial++ {
			n := 1 + rng.Intn(12)
			mu := 0.5 + rng.Float64()*2
			r := make([]float64, n)
			for i := range r {
				switch rng.Intn(5) {
				case 0:
					r[i] = 0
				case 1:
					r[i] = mu * rng.Float64() // occasionally pushes ρ ≥ 1
				default:
					r[i] = mu * rng.Float64() / float64(n)
				}
			}
			checkObserveInto(t, d, scr, r, mu)
		}
	}
}

// TestObserveIntoRejectsInvalidInput mirrors the allocating methods'
// validation, plus buffer-length checking in the helper.
func TestObserveIntoRejectsInvalidInput(t *testing.T) {
	scr := new(Scratch)
	for _, d := range inPlaceDisciplines {
		if err := ObserveInto(d, []float64{0}, []float64{0}, []float64{-1}, 1, scr); err == nil {
			t.Errorf("%s: negative rate accepted", d.Name())
		}
		if err := ObserveInto(d, []float64{0}, []float64{0}, []float64{0.5}, 0, scr); err == nil {
			t.Errorf("%s: zero service rate accepted", d.Name())
		}
		if err := ObserveInto(d, []float64{0}, []float64{0, 0}, []float64{0.5}, 1, scr); err == nil {
			t.Errorf("%s: mismatched buffer lengths accepted", d.Name())
		}
	}
}

// TestObserveIntoFallback checks the generic copy path for a
// discipline without an in-place implementation.
func TestObserveIntoFallback(t *testing.T) {
	// An embedded FIFO would promote ObserveInto, so strip it by
	// wrapping in a struct that only forwards the base methods.
	type bare struct{ Discipline }
	d := bare{FIFO{}}
	if _, ok := Discipline(d).(InPlace); ok {
		t.Fatal("test wrapper unexpectedly implements InPlace")
	}
	r := []float64{0.2, 0.3}
	q := make([]float64, 2)
	w := make([]float64, 2)
	if err := ObserveInto(d, q, w, r, 1, new(Scratch)); err != nil {
		t.Fatal(err)
	}
	qWant, _ := FIFO{}.Queues(r, 1)
	wWant, _ := FIFO{}.SojournTimes(r, 1)
	for i := range r {
		if !sameFloat(q[i], qWant[i]) || !sameFloat(w[i], wWant[i]) {
			t.Fatalf("fallback mismatch at %d: q=%v w=%v want q=%v w=%v", i, q[i], w[i], qWant[i], wWant[i])
		}
	}
}

package queueing

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestNonPreemptiveSingleConnectionMatchesFIFO(t *testing.T) {
	// One connection: non-preemptive priority degenerates to M/M/1.
	qf, err := FIFO{}.Queues([]float64{0.6}, 1)
	if err != nil {
		t.Fatal(err)
	}
	qn, err := NonPreemptiveFairShare{}.Queues([]float64{0.6}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(qf[0]-qn[0]) > 1e-12 {
		t.Errorf("single connection: FIFO %v vs NP-FS %v", qf[0], qn[0])
	}
}

func TestNonPreemptiveKnownValues(t *testing.T) {
	// Two connections, r = (0.1, 0.5), μ = 1. Classes: A with λ = 0.2
	// (both at 0.1), B with λ = 0.4 (conn 1's excess). Loads L_1 =
	// 0.2, L_2 = 0.6; W0 = 0.6.
	// T_A = 0.6/(1·0.8) + 1 = 1.75; T_B = 0.6/(0.8·0.4) + 1 = 2.875.
	// Q_0 = 0.1·1.75 = 0.175; Q_1 = 0.1·1.75 + 0.4·2.875 = 1.325.
	q, err := NonPreemptiveFairShare{}.Queues([]float64{0.1, 0.5}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(q[0]-0.175) > 1e-12 {
		t.Errorf("Q_0 = %v, want 0.175", q[0])
	}
	if math.Abs(q[1]-1.325) > 1e-12 {
		t.Errorf("Q_1 = %v, want 1.325", q[1])
	}
}

// The A3 headline, analytically: non-preemptive Fair Share violates
// the Theorem 5 bound exactly when a rate is below the gateway
// average. At the minimum rate the condition Q_1 ≤ r_1/(μ−N·r_1)
// reduces to ρ_tot ≤ N·ρ_1.
func TestNonPreemptiveViolatesRobustBound(t *testing.T) {
	r := []float64{0.1, 0.5} // r_0 well below the mean
	bad, err := RobustnessViolations(NonPreemptiveFairShare{}, r, 1, 1e-9)
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, i := range bad {
		if i == 0 {
			found = true
		}
	}
	if !found {
		t.Errorf("below-average connection should violate the bound, got %v", bad)
	}
	// Equal rates satisfy it (ρ_tot = N·ρ_i exactly).
	bad, err = RobustnessViolations(NonPreemptiveFairShare{}, []float64{0.3, 0.3}, 1, 1e-9)
	if err != nil {
		t.Fatal(err)
	}
	if len(bad) != 0 {
		t.Errorf("equal rates should satisfy the bound, got %v", bad)
	}
}

func TestNonPreemptiveZeroRate(t *testing.T) {
	q, err := NonPreemptiveFairShare{}.Queues([]float64{0, 0.5}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if q[0] != 0 {
		t.Errorf("zero-rate queue = %v", q[0])
	}
	w, err := NonPreemptiveFairShare{}.SojournTimes([]float64{0, 0.5}, 1)
	if err != nil {
		t.Fatal(err)
	}
	// Probe waits for the residual service: W0 + 1/μ = 0.5 + 1.
	if math.Abs(w[0]-1.5) > 1e-12 {
		t.Errorf("probe sojourn = %v, want 1.5", w[0])
	}
}

func TestNonPreemptivePartialOverload(t *testing.T) {
	// The hog overloads; the low-rate connection stays finite (its
	// class load is small) but now pays the residual-service tax.
	q, err := NonPreemptiveFairShare{}.Queues([]float64{0.1, 2.0}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if math.IsInf(q[0], 1) {
		t.Error("low-rate connection should stay finite")
	}
	if !math.IsInf(q[1], 1) {
		t.Error("the hog should be overloaded")
	}
	// Compare with preemptive FS: non-preemptive is strictly worse for
	// the protected connection (it waits behind in-service hog
	// packets).
	qp, err := FairShare{}.Queues([]float64{0.1, 2.0}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if q[0] <= qp[0] {
		t.Errorf("non-preemptive (%v) should exceed preemptive (%v) for the protected connection", q[0], qp[0])
	}
}

// Property: Kleinrock's conservation law — the non-preemptive variant
// conserves the same total queue g(ρ_tot) as every other work-
// conserving discipline.
func TestPropNonPreemptiveConservation(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		mu := 0.5 + rng.Float64()*4
		r := randRates(rng, 1+rng.Intn(8), mu, 0.95)
		q, err := NonPreemptiveFairShare{}.Queues(r, mu)
		if err != nil {
			return false
		}
		sum := 0.0
		for _, qi := range q {
			sum += qi
		}
		want, err := TotalQueue(r, mu)
		if err != nil {
			return false
		}
		return math.Abs(sum-want) < 1e-9*(1+want)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// Property: non-preemption only hurts the lowest-rate connection —
// its queue is always at least the preemptive Fair Share value.
func TestPropNonPreemptiveDominatesForMinRate(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		r := randRates(rng, 2+rng.Intn(6), 1, 0.9)
		minI := 0
		for i := range r {
			if r[i] < r[minI] {
				minI = i
			}
		}
		if r[minI] == 0 {
			return true
		}
		qn, err := NonPreemptiveFairShare{}.Queues(r, 1)
		if err != nil {
			return false
		}
		qp, err := FairShare{}.Queues(r, 1)
		if err != nil {
			return false
		}
		return qn[minI] >= qp[minI]-1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

package queueing

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestRobustBound(t *testing.T) {
	// r=0.1, μ=1, N=4: bound = 0.1/0.6.
	if got, want := RobustBound(0.1, 1, 4), 0.1/0.6; math.Abs(got-want) > 1e-12 {
		t.Errorf("RobustBound = %v, want %v", got, want)
	}
	if !math.IsInf(RobustBound(0.5, 1, 4), 1) {
		t.Error("bound should be +Inf when N·r ≥ μ")
	}
}

func TestRobustBoundPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("want panic for negative rate")
		}
	}()
	RobustBound(-1, 1, 2)
}

func TestFIFOViolatesRobustness(t *testing.T) {
	// A below-average rate under FIFO violates the Theorem 5 bound.
	r := []float64{0.05, 0.6}
	bad, err := RobustnessViolations(FIFO{}, r, 1, 1e-9)
	if err != nil {
		t.Fatal(err)
	}
	if len(bad) == 0 || bad[0] != 0 {
		t.Errorf("expected connection 0 to violate, got %v", bad)
	}
}

func TestFIFOUniformRatesSatisfyBound(t *testing.T) {
	// With equal rates FIFO meets the bound exactly (Σr = N·r_i).
	r := []float64{0.2, 0.2, 0.2}
	bad, err := RobustnessViolations(FIFO{}, r, 1, 1e-9)
	if err != nil {
		t.Fatal(err)
	}
	if len(bad) != 0 {
		t.Errorf("uniform FIFO should not violate, got %v", bad)
	}
}

// Property (Theorem 5, sufficiency direction): Fair Share never
// violates Q_i ≤ r_i/(μ − N·r_i), including in partial overload.
func TestPropFairShareNeverViolatesRobustBound(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		mu := 0.5 + rng.Float64()*5
		n := 1 + rng.Intn(10)
		r := make([]float64, n)
		for i := range r {
			// Allow loads past stability to exercise the overload path.
			r[i] = rng.Float64() * 1.5 * mu / float64(n)
		}
		bad, err := RobustnessViolations(FairShare{}, r, mu, 1e-9)
		return err == nil && len(bad) == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property: FIFO violates the bound whenever rates are sufficiently
// skewed (some r_i below the mean by a margin), confirming the paper's
// "FIFO does not satisfy this condition".
func TestPropFIFOViolatesWhenSkewed(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		mu := 1.0
		n := 2 + rng.Intn(6)
		r := randRates(rng, n, mu, 0.8)
		r[0] = r[0] / 10 // force a clearly below-average connection
		// Only meaningful when the reservation benchmark is stable for r[0].
		if float64(n)*r[0] >= mu {
			return true
		}
		sum := 0.0
		for _, ri := range r {
			sum += ri
		}
		if sum <= float64(n)*r[0]+1e-6 || sum >= mu {
			return true // not skewed enough, or unstable total
		}
		bad, err := RobustnessViolations(FIFO{}, r, mu, 1e-9)
		if err != nil {
			return false
		}
		for _, i := range bad {
			if i == 0 {
				return true
			}
		}
		return false
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestReservationQueue(t *testing.T) {
	// N=4, μ=1, r=0.1: load on the μ/4 reserved server is 0.4.
	want := G(0.4)
	if got := ReservationQueue(0.1, 1, 4); math.Abs(got-want) > 1e-12 {
		t.Errorf("ReservationQueue = %v, want %v", got, want)
	}
}

func TestReservationSojourn(t *testing.T) {
	// μ/N = 0.25, r = 0.1: sojourn 1/0.15.
	want := 1 / 0.15
	if got := ReservationSojourn(0.1, 1, 4); math.Abs(got-want) > 1e-9 {
		t.Errorf("ReservationSojourn = %v, want %v", got, want)
	}
	if !math.IsInf(ReservationSojourn(0.3, 1, 4), 1) {
		t.Error("saturated reservation should be +Inf")
	}
}

func TestReservationPanics(t *testing.T) {
	for name, fn := range map[string]func(){
		"queue":   func() { ReservationQueue(0.1, 0, 4) },
		"sojourn": func() { ReservationSojourn(0.1, 1, 0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: want panic", name)
				}
			}()
			fn()
		}()
	}
}

// The Section 3.4 delay claim: a robust discipline at full fair load
// has per-connection sojourn lower than the reservation benchmark by
// at least a factor N.
func TestFairShareDelayBeatsReservationByFactorN(t *testing.T) {
	mu := 1.0
	for _, n := range []int{2, 4, 8, 16} {
		r := make([]float64, n)
		for i := range r {
			r[i] = 0.8 * mu / float64(n) // fair share of an 80% loaded gateway
		}
		w, err := FairShare{}.SojournTimes(r, mu)
		if err != nil {
			t.Fatal(err)
		}
		resv := ReservationSojourn(r[0], mu, n)
		ratio := resv / w[0]
		if ratio < float64(n)*0.999 {
			t.Errorf("N=%d: reservation/FS delay ratio %v, want >= %d", n, ratio, n)
		}
	}
}

func TestPriorityDecompositionTable1(t *testing.T) {
	// The paper's Table 1 with r = (r1, r2, r3, r4) = (1, 2, 3, 4):
	// row i has entries r1, r2−r1, …: here all ones.
	table, perm := PriorityDecomposition([]float64{1, 2, 3, 4})
	want := [][]float64{
		{1, 0, 0, 0},
		{1, 1, 0, 0},
		{1, 1, 1, 0},
		{1, 1, 1, 1},
	}
	for i := range want {
		for j := range want[i] {
			if math.Abs(table[i][j]-want[i][j]) > 1e-12 {
				t.Errorf("table[%d][%d] = %v, want %v", i, j, table[i][j], want[i][j])
			}
		}
	}
	for i, p := range perm {
		if p != i {
			t.Errorf("perm[%d] = %d for already-sorted input", i, p)
		}
	}
}

func TestPriorityDecompositionUnsorted(t *testing.T) {
	table, perm := PriorityDecomposition([]float64{3, 1, 2})
	// Sorted rates: 1 (orig 1), 2 (orig 2), 3 (orig 0).
	if perm[0] != 1 || perm[1] != 2 || perm[2] != 0 {
		t.Errorf("perm = %v", perm)
	}
	wantRows := [][]float64{
		{1, 0, 0},
		{1, 1, 0},
		{1, 1, 1},
	}
	for i := range wantRows {
		for j := range wantRows[i] {
			if math.Abs(table[i][j]-wantRows[i][j]) > 1e-12 {
				t.Errorf("table[%d][%d] = %v, want %v", i, j, table[i][j], wantRows[i][j])
			}
		}
	}
}

// Property: Table 1 row sums reproduce the sorted rates, and columns
// are triangular (class j is used only by connections i ≥ j).
func TestPropPriorityDecomposition(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(10)
		r := make([]float64, n)
		for i := range r {
			r[i] = rng.Float64() * 5
		}
		table, perm := PriorityDecomposition(r)
		for i := 0; i < n; i++ {
			sum := 0.0
			for j := 0; j < n; j++ {
				if table[i][j] < -1e-12 {
					return false // negative substream rate
				}
				if j > i && table[i][j] != 0 {
					return false // above-diagonal entry
				}
				sum += table[i][j]
			}
			if math.Abs(sum-r[perm[i]]) > 1e-9 {
				return false // row sum must equal the connection's rate
			}
		}
		// Within a class all participating connections get the same rate.
		for j := 0; j < n; j++ {
			for i := j + 1; i < n; i++ {
				if math.Abs(table[i][j]-table[j][j]) > 1e-9 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestCheckFeasibilityAccepts(t *testing.T) {
	r := []float64{0.1, 0.2, 0.3}
	for _, d := range []Discipline{FIFO{}, FairShare{}} {
		q, err := d.Queues(r, 1)
		if err != nil {
			t.Fatal(err)
		}
		rep, err := CheckFeasibility(r, q, 1, 1e-9)
		if err != nil {
			t.Fatal(err)
		}
		if !rep.Feasible {
			t.Errorf("%s should be feasible: %+v", d.Name(), rep)
		}
	}
}

func TestCheckFeasibilityConservationViolation(t *testing.T) {
	r := []float64{0.2, 0.2}
	rep, err := CheckFeasibility(r, []float64{0.1, 0.1}, 1, 1e-9)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Feasible || rep.ConservationErr < 0.1 {
		t.Errorf("under-conserving Q should fail: %+v", rep)
	}
}

func TestCheckFeasibilityPrefixViolation(t *testing.T) {
	// Conserve the total but starve one connection below its solo
	// bound: Q = (tiny, rest). With ratios sorted, the first prefix is
	// below g(ρ_1).
	r := []float64{0.4, 0.4}
	total := G(0.8)
	q := []float64{0.01, total - 0.01}
	rep, err := CheckFeasibility(r, q, 1, 1e-9)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Feasible || len(rep.PrefixViolations) == 0 {
		t.Errorf("prefix-starving Q should fail: %+v", rep)
	}
}

func TestCheckFeasibilityErrors(t *testing.T) {
	if _, err := CheckFeasibility([]float64{0.1}, []float64{0.1, 0.2}, 1, 1e-9); err == nil {
		t.Error("want length mismatch error")
	}
	if _, err := CheckFeasibility([]float64{-1}, []float64{0}, 1, 1e-9); err == nil {
		t.Error("want validation error")
	}
}

func TestCheckFeasibilityOverloadConsistent(t *testing.T) {
	// Both total and computed queues infinite: conservation holds.
	r := []float64{0.7, 0.7}
	q, err := FIFO{}.Queues(r, 1)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := CheckFeasibility(r, q, 1, 1e-9)
	if err != nil {
		t.Fatal(err)
	}
	if rep.ConservationErr != 0 {
		t.Errorf("Inf/Inf conservation error = %v, want 0", rep.ConservationErr)
	}
}

// Property: FIFO and Fair Share queue vectors always pass the
// feasibility check in the stable region — they are realizable
// disciplines.
func TestPropDisciplinesFeasible(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		mu := 0.5 + rng.Float64()*4
		n := 1 + rng.Intn(8)
		r := randRates(rng, n, mu, 0.95)
		for _, d := range []Discipline{FIFO{}, FairShare{}} {
			q, err := d.Queues(r, mu)
			if err != nil {
				return false
			}
			rep, err := CheckFeasibility(r, q, mu, 1e-7)
			if err != nil || !rep.Feasible {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

package queueing

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// randRates draws n rates in (0, maxLoad·mu/n) so the system stays
// strictly stable.
func randRates(rng *rand.Rand, n int, mu, maxLoad float64) []float64 {
	r := make([]float64, n)
	for i := range r {
		r[i] = rng.Float64() * maxLoad * mu / float64(n)
	}
	return r
}

func TestG(t *testing.T) {
	cases := []struct{ x, want float64 }{
		{0, 0},
		{0.5, 1},
		{0.9, 9},
		{1, math.Inf(1)},
		{1.5, math.Inf(1)},
	}
	for _, c := range cases {
		if got := G(c.x); got != c.want && math.Abs(got-c.want) > 1e-12 {
			t.Errorf("G(%v) = %v, want %v", c.x, got, c.want)
		}
	}
}

func TestGPanics(t *testing.T) {
	for _, x := range []float64{-0.1, math.NaN()} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("G(%v) should panic", x)
				}
			}()
			G(x)
		}()
	}
}

func TestGInv(t *testing.T) {
	if got := GInv(1); math.Abs(got-0.5) > 1e-12 {
		t.Errorf("GInv(1) = %v, want 0.5", got)
	}
	if got := GInv(math.Inf(1)); got != 1 {
		t.Errorf("GInv(Inf) = %v, want 1", got)
	}
	// Round trip.
	for _, x := range []float64{0, 0.1, 0.5, 0.99} {
		if got := GInv(G(x)); math.Abs(got-x) > 1e-12 {
			t.Errorf("GInv(G(%v)) = %v", x, got)
		}
	}
}

func TestGInvPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("GInv(-1) should panic")
		}
	}()
	GInv(-1)
}

func TestValidateErrors(t *testing.T) {
	var f FIFO
	if _, err := f.Queues(nil, 1); err == nil {
		t.Error("want error for empty rates")
	}
	if _, err := f.Queues([]float64{1}, 0); err == nil {
		t.Error("want error for mu=0")
	}
	if _, err := f.Queues([]float64{-1}, 1); err == nil {
		t.Error("want error for negative rate")
	}
	if _, err := f.Queues([]float64{math.NaN()}, 1); err == nil {
		t.Error("want error for NaN rate")
	}
	if _, err := f.Queues([]float64{1}, math.Inf(1)); err == nil {
		t.Error("want error for infinite mu")
	}
}

func TestFIFOSingleConnection(t *testing.T) {
	q, err := FIFO{}.Queues([]float64{0.5}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(q[0]-1) > 1e-12 { // g(0.5) = 1
		t.Errorf("Q = %v, want 1", q[0])
	}
}

func TestFIFOProportionalSplit(t *testing.T) {
	q, err := FIFO{}.Queues([]float64{0.1, 0.3}, 1)
	if err != nil {
		t.Fatal(err)
	}
	// Q_i = ρ_i/(1-0.4): 1/6 and 1/2.
	if math.Abs(q[0]-0.1/0.6) > 1e-12 || math.Abs(q[1]-0.3/0.6) > 1e-12 {
		t.Errorf("Q = %v", q)
	}
}

func TestFIFOOverload(t *testing.T) {
	q, err := FIFO{}.Queues([]float64{0.7, 0.5, 0}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if !math.IsInf(q[0], 1) || !math.IsInf(q[1], 1) {
		t.Errorf("overloaded queues should be +Inf: %v", q)
	}
	if q[2] != 0 {
		t.Errorf("zero-rate queue should be 0 even in overload, got %v", q[2])
	}
}

func TestFIFOSojourn(t *testing.T) {
	w, err := FIFO{}.SojournTimes([]float64{0.25, 0.25, 0}, 1)
	if err != nil {
		t.Fatal(err)
	}
	want := 1 / (1 - 0.5) // 1/(μ-λ) = 2
	for i, wi := range w {
		if math.Abs(wi-want) > 1e-12 {
			t.Errorf("W[%d] = %v, want %v (FIFO gives everyone the same delay)", i, wi, want)
		}
	}
	w, err = FIFO{}.SojournTimes([]float64{1.5}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if !math.IsInf(w[0], 1) {
		t.Errorf("overloaded sojourn should be +Inf, got %v", w[0])
	}
}

func TestFairShareSymmetricRates(t *testing.T) {
	// All rates equal: every connection gets Q = g(ρ_tot)/N.
	r := []float64{0.2, 0.2, 0.2}
	q, err := FairShare{}.Queues(r, 1)
	if err != nil {
		t.Fatal(err)
	}
	want := G(0.6) / 3
	for i, qi := range q {
		if math.Abs(qi-want) > 1e-12 {
			t.Errorf("Q[%d] = %v, want %v", i, qi, want)
		}
	}
}

func TestFairShareSingleConnectionMatchesFIFO(t *testing.T) {
	qf, err := FIFO{}.Queues([]float64{0.7}, 1)
	if err != nil {
		t.Fatal(err)
	}
	qs, err := FairShare{}.Queues([]float64{0.7}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(qf[0]-qs[0]) > 1e-12 {
		t.Errorf("single connection: FIFO %v vs FS %v", qf[0], qs[0])
	}
}

func TestFairShareMinRateEqualsRobustBound(t *testing.T) {
	// The connection with the smallest rate meets the Theorem 5 bound
	// with equality: Q_min = r/(μ − N·r).
	r := []float64{0.05, 0.2, 0.3, 0.25}
	q, err := FairShare{}.Queues(r, 1)
	if err != nil {
		t.Fatal(err)
	}
	want := RobustBound(0.05, 1, 4)
	if math.Abs(q[0]-want) > 1e-12 {
		t.Errorf("Q_min = %v, want %v", q[0], want)
	}
}

func TestFairShareProtectsLowRatesInOverload(t *testing.T) {
	// Connection 1 overloads the gateway; connection 0's queue stays
	// finite under Fair Share but explodes under FIFO.
	r := []float64{0.1, 2.0}
	qfs, err := FairShare{}.Queues(r, 1)
	if err != nil {
		t.Fatal(err)
	}
	if math.IsInf(qfs[0], 1) {
		t.Error("Fair Share should protect the low-rate connection")
	}
	// Its queue is that of sharing with the hog's equal-priority
	// substream only: g(2·0.1)/2.
	want := G(0.2) / 2
	if math.Abs(qfs[0]-want) > 1e-12 {
		t.Errorf("protected queue = %v, want %v", qfs[0], want)
	}
	if !math.IsInf(qfs[1], 1) {
		t.Error("the overloading connection should see an infinite queue")
	}
	qf, err := FIFO{}.Queues(r, 1)
	if err != nil {
		t.Fatal(err)
	}
	if !math.IsInf(qf[0], 1) {
		t.Error("FIFO overload should drown everyone")
	}
}

func TestFairShareZeroRate(t *testing.T) {
	q, err := FairShare{}.Queues([]float64{0, 0.5}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if q[0] != 0 {
		t.Errorf("zero-rate queue = %v, want 0", q[0])
	}
	w, err := FairShare{}.SojournTimes([]float64{0, 0.5}, 2)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(w[0]-0.5) > 1e-12 {
		t.Errorf("zero-rate FS probe sojourn = %v, want 1/μ = 0.5", w[0])
	}
}

func TestFairShareSojournInfinite(t *testing.T) {
	w, err := FairShare{}.SojournTimes([]float64{0.1, 5}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if math.IsInf(w[0], 1) {
		t.Error("protected connection should have finite sojourn")
	}
	if !math.IsInf(w[1], 1) {
		t.Error("overloading connection should have infinite sojourn")
	}
}

// Property: both disciplines conserve the total queue, Σ Q_i =
// g(ρ_tot) — the discipline-insensitivity of aggregate congestion.
func TestPropConservation(t *testing.T) {
	disciplines := []Discipline{FIFO{}, FairShare{}}
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		mu := 0.5 + rng.Float64()*10
		r := randRates(rng, 1+rng.Intn(10), mu, 0.95)
		want, err := TotalQueue(r, mu)
		if err != nil {
			return false
		}
		for _, d := range disciplines {
			q, err := d.Queues(r, mu)
			if err != nil {
				return false
			}
			sum := 0.0
			for _, qi := range q {
				sum += qi
			}
			if math.Abs(sum-want) > 1e-9*(1+want) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// Property: both disciplines are symmetric — permuting rates permutes
// queues identically (Section 2.2's datagram requirement).
func TestPropSymmetry(t *testing.T) {
	disciplines := []Discipline{FIFO{}, FairShare{}}
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		mu := 1.0
		n := 2 + rng.Intn(8)
		r := randRates(rng, n, mu, 0.9)
		perm := rng.Perm(n)
		rp := make([]float64, n)
		for i, p := range perm {
			rp[i] = r[p]
		}
		for _, d := range disciplines {
			q, err := d.Queues(r, mu)
			if err != nil {
				return false
			}
			qp, err := d.Queues(rp, mu)
			if err != nil {
				return false
			}
			for i, p := range perm {
				if math.Abs(qp[i]-q[p]) > 1e-9 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// Property: both disciplines are time-scale invariant —
// Q(c·r, c·μ) = Q(r, μ) (Section 2.2).
func TestPropTimeScaleInvariance(t *testing.T) {
	disciplines := []Discipline{FIFO{}, FairShare{}}
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		mu := 1.0
		n := 1 + rng.Intn(6)
		r := randRates(rng, n, mu, 0.9)
		c := math.Exp(rng.Float64()*10 - 5) // scales across ~4 decades
		rc := make([]float64, n)
		for i := range r {
			rc[i] = r[i] * c
		}
		for _, d := range disciplines {
			q, err := d.Queues(r, mu)
			if err != nil {
				return false
			}
			qc, err := d.Queues(rc, mu*c)
			if err != nil {
				return false
			}
			for i := range q {
				if math.Abs(qc[i]-q[i]) > 1e-7*(1+q[i]) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// Property: monotonicity assumption (2) of Section 2.2 —
// Q_i > Q_j ⟺ r_i > r_j — holds for both disciplines.
func TestPropQueueOrderMatchesRateOrder(t *testing.T) {
	disciplines := []Discipline{FIFO{}, FairShare{}}
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		mu := 1.0
		n := 2 + rng.Intn(8)
		r := randRates(rng, n, mu, 0.9)
		for _, d := range disciplines {
			q, err := d.Queues(r, mu)
			if err != nil {
				return false
			}
			for i := 0; i < n; i++ {
				for j := 0; j < n; j++ {
					if r[i] > r[j]+1e-12 && q[i] <= q[j]-1e-12 {
						return false
					}
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// Property: Fair Share's recursion is triangular — Q_i depends only on
// rates r_k ≤ r_i. Raising the largest rate must not change any other
// queue (the paper's "locally Q_i depends only on those r_j with
// r_j ≤ r_i").
func TestPropFairShareTriangularDependence(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		mu := 1.0
		n := 2 + rng.Intn(6)
		r := randRates(rng, n, mu, 0.6)
		// Find the max-rate connection and bump it (staying stable).
		maxI := 0
		for i := range r {
			if r[i] > r[maxI] {
				maxI = i
			}
		}
		q1, err := FairShare{}.Queues(r, mu)
		if err != nil {
			return false
		}
		r2 := append([]float64(nil), r...)
		r2[maxI] += 0.3 / float64(n) * mu
		q2, err := FairShare{}.Queues(r2, mu)
		if err != nil {
			return false
		}
		for i := range r {
			if i == maxI {
				continue
			}
			if math.Abs(q1[i]-q2[i]) > 1e-9 {
				return false
			}
		}
		return q2[maxI] >= q1[maxI]-1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// Property: sojourn times satisfy Little's law against queues for
// positive rates.
func TestPropLittleConsistency(t *testing.T) {
	disciplines := []Discipline{FIFO{}, FairShare{}}
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		mu := 2.0
		n := 1 + rng.Intn(6)
		r := randRates(rng, n, mu, 0.9)
		for i := range r {
			r[i] += 1e-6 // keep rates strictly positive
		}
		for _, d := range disciplines {
			q, err := d.Queues(r, mu)
			if err != nil {
				return false
			}
			w, err := d.SojournTimes(r, mu)
			if err != nil {
				return false
			}
			for i := range r {
				if math.Abs(w[i]*r[i]-q[i]) > 1e-9*(1+q[i]) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

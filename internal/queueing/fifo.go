package queueing

import "math"

// FIFO is the first-in-first-out service discipline: packets are
// served in arrival order with no distinction between connections.
// The classical M/M/1 decomposition gives Q_i = ρ_i / (1 − ρ_tot).
type FIFO struct{}

// Name implements Discipline.
func (FIFO) Name() string { return "FIFO" }

// Queues implements Discipline. In overload (ρ_tot ≥ 1) every
// connection with a positive rate has an unbounded queue.
func (FIFO) Queues(r []float64, mu float64) ([]float64, error) {
	rho, err := validate(r, mu)
	if err != nil {
		return nil, err
	}
	q := make([]float64, len(r))
	if rho >= 1 {
		for i, ri := range r {
			if ri > 0 {
				q[i] = math.Inf(1)
			}
		}
		return q, nil
	}
	for i, ri := range r {
		q[i] = (ri / mu) / (1 - rho)
	}
	return q, nil
}

// SojournTimes implements Discipline. Every packet, regardless of
// connection, sees the same mean time in system 1/(μ − λ_tot); this is
// exactly FIFO's lack of protection. Zero-rate probe connections see
// the same value (PASTA).
func (FIFO) SojournTimes(r []float64, mu float64) ([]float64, error) {
	rho, err := validate(r, mu)
	if err != nil {
		return nil, err
	}
	w := make([]float64, len(r))
	sojourn := math.Inf(1)
	if rho < 1 {
		sojourn = 1 / (mu * (1 - rho))
	}
	for i := range r {
		w[i] = sojourn
	}
	return w, nil
}

// ObserveInto implements InPlace: one validation pass, both results,
// no allocations. Values are bit-identical to Queues + SojournTimes.
//
//ffc:hotpath
func (FIFO) ObserveInto(q, w, r []float64, mu float64, scr *Scratch) error {
	rho, err := validate(r, mu)
	if err != nil {
		return err
	}
	if rho >= 1 {
		for i, ri := range r {
			if ri > 0 {
				q[i] = math.Inf(1)
			} else {
				q[i] = 0
			}
			w[i] = math.Inf(1)
		}
		return nil
	}
	sojourn := 1 / (mu * (1 - rho))
	for i, ri := range r {
		q[i] = (ri / mu) / (1 - rho)
		w[i] = sojourn
	}
	return nil
}

package queueing

import (
	"fmt"
	"math"
)

// RobustBound returns the Theorem 5 bound r/(μ − N·r): a service
// discipline supports robust TSI individual feedback flow control if
// and only if Q_i(r) ≤ RobustBound(r_i, μ, N) for every rate vector.
// The bound is +Inf when N·r ≥ μ (the reservation share is exhausted).
func RobustBound(r, mu float64, n int) float64 {
	if r < 0 || mu <= 0 || n <= 0 {
		panic(fmt.Sprintf("queueing: RobustBound(%v, %v, %d) undefined", r, mu, n))
	}
	den := mu - float64(n)*r
	if den <= 0 {
		return math.Inf(1)
	}
	return r / den
}

// RobustnessViolations evaluates the Theorem 5 criterion for
// discipline d at rate vector r: it returns the indices i with
// Q_i(r) > r_i/(μ − N·r_i) beyond relative tolerance tol. The paper
// proves Fair Share always returns an empty list (with equality at the
// minimum rate) and FIFO does not.
func RobustnessViolations(d Discipline, r []float64, mu, tol float64) ([]int, error) {
	q, err := d.Queues(r, mu)
	if err != nil {
		return nil, err
	}
	n := len(r)
	var bad []int
	for i, qi := range q {
		bound := RobustBound(r[i], mu, n)
		if math.IsInf(bound, 1) {
			continue // vacuous: the reservation benchmark is itself unstable
		}
		if qi > bound+tol*(1+bound) {
			bad = append(bad, i)
		}
	}
	return bad, nil
}

// ReservationQueue returns the queue length connection i would have in
// the reservation-based benchmark of Section 2.4.4: alone at a server
// of rate μ/N. It is g(N·r_i/μ).
func ReservationQueue(r, mu float64, n int) float64 {
	if r < 0 || mu <= 0 || n <= 0 {
		panic(fmt.Sprintf("queueing: ReservationQueue(%v, %v, %d) undefined", r, mu, n))
	}
	return G(float64(n) * r / mu)
}

// ReservationSojourn returns the mean packet sojourn time of the
// reservation benchmark: 1/(μ/N − r), or +Inf when the reserved share
// is saturated. Robust TSI individual feedback flow control beats this
// by at least a factor N at each gateway (Section 3.4).
func ReservationSojourn(r, mu float64, n int) float64 {
	if r < 0 || mu <= 0 || n <= 0 {
		panic(fmt.Sprintf("queueing: ReservationSojourn(%v, %v, %d) undefined", r, mu, n))
	}
	den := mu/float64(n) - r
	if den <= 0 {
		return math.Inf(1)
	}
	return 1 / den
}

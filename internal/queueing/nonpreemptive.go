package queueing

import "math"

// NonPreemptiveFairShare is Fair Share without preemption: the same
// Table 1 substream priority classes, but an arriving high-priority
// packet waits for the packet in service to finish. It exists as an
// ablation (experiment A3): the classical non-preemptive priority
// formulas show the Theorem 5 robustness bound then FAILS whenever a
// connection's rate is below the gateway average — preemption is
// load-bearing in the paper's robustness result, not an implementation
// detail.
//
// With classes ordered by priority, common exponential service μ, and
// cumulative class loads L_j (the same L_j = Σ_k min(r_k, r_j)/μ as
// the preemptive recursion, read from the sorted prefix sum — see
// FairShare), the Kleinrock non-preemptive formulas give per-class
// mean waits
//
//	W_j = W0 / ((1 − L_{j−1})(1 − L_j)),   W0 = min(ρ_tot, 1)/μ,
//
// (W0 is the mean residual service seen on arrival) and a connection's
// mean queue is the Little sum over its substreams,
// Q_i = Σ_{j≤i} λ_ij·(W_j + 1/μ). That sum is itself a running prefix
// over the sorted classes, so the whole evaluation is one sort plus
// two O(N) sweeps. Kleinrock's conservation law makes the totals match
// g(ρ_tot), so the aggregate signal remains discipline-blind even
// here.
type NonPreemptiveFairShare struct{}

// Name implements Discipline.
func (NonPreemptiveFairShare) Name() string { return "NonPreemptiveFairShare" }

// Queues implements Discipline as an allocating wrapper over
// ObserveInto — one code path for both variants.
func (d NonPreemptiveFairShare) Queues(r []float64, mu float64) ([]float64, error) {
	q := make([]float64, len(r))
	w := make([]float64, len(r))
	if err := d.ObserveInto(q, w, r, mu, new(Scratch)); err != nil {
		return nil, err
	}
	return q, nil
}

// ObserveInto implements InPlace: the Kleinrock recursion evaluated
// into caller buffers in O(N log N) — class loads from the sorted
// prefix sum, per-connection Little sums as a running prefix over
// λ_j·(W_j + 1/μ) (the running form performs the same float additions
// in the same order as summing each connection's substreams afresh, so
// it changes no bits), and sojourn times derived from the queues in
// hand rather than recomputed.
//
//ffc:hotpath
func (d NonPreemptiveFairShare) ObserveInto(q, w, r []float64, mu float64, scr *Scratch) error {
	if _, err := validate(r, mu); err != nil {
		return err
	}
	n := len(r)
	idx := scr.order(r)
	classSojourn := scr.f1
	sortedRates := scr.f2

	rhoTot := 0.0
	for _, ri := range r {
		rhoTot += ri / mu
	}
	w0 := math.Min(rhoTot, 1) / mu

	// Per sorted class j: cumulative load through the class from the
	// running prefix (Σ of lower-sorted rates plus (n−j)·r_(j)), then
	// the Kleinrock mean time in system of class-j packets.
	prevLoad := 0.0
	cum := 0.0 // Σ of sorted rates strictly below class j
	for j, i := range idx {
		ri := r[i]
		sortedRates[j] = ri
		load := (cum + float64(n-j)*ri) / mu
		cum += ri
		if load >= 1 {
			classSojourn[j] = math.Inf(1)
		} else {
			classSojourn[j] = w0/((1-prevLoad)*(1-load)) + 1/mu
		}
		prevLoad = math.Min(load, 1)
	}
	// Connection i's queue: Little over its Table 1 substreams,
	// λ_ij = r_(j) − r_(j−1) for j ≤ pos(i). The partial sums are
	// shared between consecutive positions, so one running total
	// replaces the per-connection rescan; an overloaded class with a
	// positive substream rate pins the total (and every later one) at
	// +Inf, exactly as the per-connection scan's early exit did.
	runTotal := 0.0
	prev := 0.0
	for pos, i := range idx {
		lambda := sortedRates[pos] - prev
		prev = sortedRates[pos]
		if lambda != 0 {
			if math.IsInf(classSojourn[pos], 1) {
				runTotal = math.Inf(1)
			} else {
				runTotal += lambda * classSojourn[pos]
			}
		}
		if r[i] == 0 {
			q[i] = 0
		} else {
			q[i] = runTotal
		}
	}
	for i, ri := range r {
		switch {
		case ri == 0:
			w[i] = math.Min(rhoTot, 1)/mu + 1/mu
		case math.IsInf(q[i], 1):
			w[i] = math.Inf(1)
		default:
			w[i] = q[i] / ri
		}
	}
	return nil
}

// SojournTimes implements Discipline. A zero-rate probe joins the top
// priority class but cannot preempt: it waits for the residual service
// W0 plus its own service. Like Queues it delegates to ObserveInto.
func (d NonPreemptiveFairShare) SojournTimes(r []float64, mu float64) ([]float64, error) {
	q := make([]float64, len(r))
	w := make([]float64, len(r))
	if err := d.ObserveInto(q, w, r, mu, new(Scratch)); err != nil {
		return nil, err
	}
	return w, nil
}

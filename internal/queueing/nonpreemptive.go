package queueing

import (
	"math"
	"sort"
)

// NonPreemptiveFairShare is Fair Share without preemption: the same
// Table 1 substream priority classes, but an arriving high-priority
// packet waits for the packet in service to finish. It exists as an
// ablation (experiment A3): the classical non-preemptive priority
// formulas show the Theorem 5 robustness bound then FAILS whenever a
// connection's rate is below the gateway average — preemption is
// load-bearing in the paper's robustness result, not an implementation
// detail.
//
// With classes ordered by priority, common exponential service μ, and
// cumulative class loads L_j (the same L_j = Σ_k min(r_k, r_j)/μ as
// the preemptive recursion), the Kleinrock non-preemptive formulas
// give per-class mean waits
//
//	W_j = W0 / ((1 − L_{j−1})(1 − L_j)),   W0 = min(ρ_tot, 1)/μ,
//
// (W0 is the mean residual service seen on arrival) and a connection's
// mean queue is the Little sum over its substreams,
// Q_i = Σ_{j≤i} λ_ij·(W_j + 1/μ). Kleinrock's conservation law makes
// the totals match g(ρ_tot), so the aggregate signal remains
// discipline-blind even here.
type NonPreemptiveFairShare struct{}

// Name implements Discipline.
func (NonPreemptiveFairShare) Name() string { return "NonPreemptiveFairShare" }

// Queues implements Discipline.
func (NonPreemptiveFairShare) Queues(r []float64, mu float64) ([]float64, error) {
	if _, err := validate(r, mu); err != nil {
		return nil, err
	}
	n := len(r)
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	sort.SliceStable(idx, func(a, b int) bool { return r[idx[a]] < r[idx[b]] })

	rhoTot := 0.0
	for _, ri := range r {
		rhoTot += ri / mu
	}
	w0 := math.Min(rhoTot, 1) / mu

	// Per sorted class j: boundary rates and cumulative loads.
	q := make([]float64, n)
	// classSojourn[j] is the mean time in system of class-j packets.
	classSojourn := make([]float64, n)
	prevLoad := 0.0
	for j, i := range idx {
		// Cumulative load through class j = Σ_k min(r_k, r_{(j)})/μ.
		load := 0.0
		for _, rk := range r {
			load += math.Min(rk, r[i])
		}
		load /= mu
		if load >= 1 {
			classSojourn[j] = math.Inf(1)
		} else {
			classSojourn[j] = w0/((1-prevLoad)*(1-load)) + 1/mu
		}
		prevLoad = math.Min(load, 1)
		_ = i
	}
	// Connection i's queue: Little over its Table 1 substreams.
	sortedRates := make([]float64, n)
	for j, i := range idx {
		sortedRates[j] = r[i]
	}
	for pos, i := range idx {
		if r[i] == 0 {
			q[i] = 0
			continue
		}
		total := 0.0
		prev := 0.0
		for j := 0; j <= pos; j++ {
			lambda := sortedRates[j] - prev
			prev = sortedRates[j]
			if lambda == 0 {
				continue
			}
			if math.IsInf(classSojourn[j], 1) {
				total = math.Inf(1)
				break
			}
			total += lambda * classSojourn[j]
		}
		q[i] = total
	}
	return q, nil
}

// ObserveInto implements InPlace: the Kleinrock recursion evaluated
// into caller buffers, with sojourn times derived from the queues in
// hand rather than recomputed. Values are bit-identical to Queues +
// SojournTimes.
//
//ffc:hotpath
func (d NonPreemptiveFairShare) ObserveInto(q, w, r []float64, mu float64, scr *Scratch) error {
	if _, err := validate(r, mu); err != nil {
		return err
	}
	idx := scr.order(r)
	classSojourn := scr.f1
	sortedRates := scr.f2

	rhoTot := 0.0
	for _, ri := range r {
		rhoTot += ri / mu
	}
	w0 := math.Min(rhoTot, 1) / mu

	prevLoad := 0.0
	for j, i := range idx {
		load := 0.0
		for _, rk := range r {
			load += math.Min(rk, r[i])
		}
		load /= mu
		if load >= 1 {
			classSojourn[j] = math.Inf(1)
		} else {
			classSojourn[j] = w0/((1-prevLoad)*(1-load)) + 1/mu
		}
		prevLoad = math.Min(load, 1)
	}
	for j, i := range idx {
		sortedRates[j] = r[i]
	}
	for pos, i := range idx {
		if r[i] == 0 {
			q[i] = 0
			continue
		}
		total := 0.0
		prev := 0.0
		for j := 0; j <= pos; j++ {
			lambda := sortedRates[j] - prev
			prev = sortedRates[j]
			if lambda == 0 {
				continue
			}
			if math.IsInf(classSojourn[j], 1) {
				total = math.Inf(1)
				break
			}
			total += lambda * classSojourn[j]
		}
		q[i] = total
	}
	for i, ri := range r {
		switch {
		case ri == 0:
			w[i] = math.Min(rhoTot, 1)/mu + 1/mu
		case math.IsInf(q[i], 1):
			w[i] = math.Inf(1)
		default:
			w[i] = q[i] / ri
		}
	}
	return nil
}

// SojournTimes implements Discipline. A zero-rate probe joins the top
// priority class but cannot preempt: it waits for the residual service
// W0 plus its own service.
func (d NonPreemptiveFairShare) SojournTimes(r []float64, mu float64) ([]float64, error) {
	q, err := d.Queues(r, mu)
	if err != nil {
		return nil, err
	}
	rhoTot := 0.0
	for _, ri := range r {
		rhoTot += ri / mu
	}
	w := make([]float64, len(r))
	for i, ri := range r {
		switch {
		case ri == 0:
			w[i] = math.Min(rhoTot, 1)/mu + 1/mu
		case math.IsInf(q[i], 1):
			w[i] = math.Inf(1)
		default:
			w[i] = q[i] / ri
		}
	}
	return w, nil
}

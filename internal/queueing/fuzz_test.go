package queueing

import (
	"math"
	"testing"
)

// FuzzFairShareInvariants drives the Fair Share recursion with
// arbitrary rate triples, checking the invariants that must hold for
// every valid input: conservation of the total queue in the stable
// region, queue/rate order agreement, the Theorem 5 bound, and
// protection of stable connections in partial overload.
func FuzzFairShareInvariants(f *testing.F) {
	f.Add(0.1, 0.2, 0.3, 1.0)
	f.Add(0.0, 0.0, 0.9, 1.0)
	f.Add(0.3, 0.3, 0.3, 1.0)
	f.Add(0.1, 0.5, 2.0, 1.0) // partial overload
	f.Add(0.001, 0.001, 0.9, 0.5)
	f.Fuzz(func(t *testing.T, r0, r1, r2, mu float64) {
		r := []float64{r0, r1, r2}
		for _, ri := range r {
			if ri < 0 || math.IsNaN(ri) || math.IsInf(ri, 0) || ri > 1e6 {
				t.Skip()
			}
		}
		if mu <= 1e-9 || math.IsNaN(mu) || math.IsInf(mu, 0) || mu > 1e6 {
			t.Skip()
		}
		q, err := FairShare{}.Queues(r, mu)
		if err != nil {
			t.Fatalf("valid input rejected: %v", err)
		}
		// Order agreement.
		for i := range r {
			for j := range r {
				if r[i] > r[j]+1e-12 && q[i] < q[j]-1e-9 {
					t.Fatalf("queue order violates rate order: r=%v q=%v", r, q)
				}
			}
		}
		// Theorem 5 bound for every finite queue. Within floating-point
		// distance of criticality (N·r_i ≈ μ) both sides are ~1/ε with
		// independent rounding, so the comparison is skipped there —
		// mathematically both diverge together.
		for i, qi := range q {
			if math.IsInf(qi, 1) {
				continue
			}
			if qi < 0 {
				t.Fatalf("negative queue %v for r=%v", qi, r)
			}
			bound := RobustBound(r[i], mu, len(r))
			if math.IsInf(bound, 1) || bound > 1e9 {
				continue
			}
			if qi > bound*(1+1e-9)+1e-9 {
				t.Fatalf("Theorem 5 bound violated: q=%v bound=%v r=%v mu=%v", qi, bound, r, mu)
			}
		}
		// Conservation when stable.
		sum := r0 + r1 + r2
		if sum < mu*(1-1e-9) {
			total := 0.0
			for _, qi := range q {
				total += qi
			}
			want := G(sum / mu)
			if math.Abs(total-want) > 1e-6*(1+want) {
				t.Fatalf("conservation broken: ΣQ=%v want %v (r=%v mu=%v)", total, want, r, mu)
			}
		}
		// Partial overload: connections whose cumulative class load is
		// stable must stay finite.
		for i, qi := range q {
			cum := 0.0
			for _, rk := range r {
				cum += math.Min(rk, r[i])
			}
			if cum < mu*(1-1e-9) && math.IsInf(qi, 1) {
				t.Fatalf("stable connection drowned: i=%d r=%v mu=%v", i, r, mu)
			}
		}
	})
}

// FuzzPriorityDecomposition checks the Table 1 decomposition on
// arbitrary rate vectors: non-negative entries, triangular shape, and
// row sums equal to the rates.
func FuzzPriorityDecomposition(f *testing.F) {
	f.Add(1.0, 2.0, 3.0, 4.0)
	f.Add(0.0, 0.0, 0.0, 0.0)
	f.Add(5.0, 5.0, 5.0, 5.0)
	f.Add(0.1, 100.0, 0.1, 100.0)
	f.Fuzz(func(t *testing.T, a, b, c, d float64) {
		r := []float64{a, b, c, d}
		for _, ri := range r {
			if ri < 0 || math.IsNaN(ri) || math.IsInf(ri, 0) || ri > 1e9 {
				t.Skip()
			}
		}
		table, perm := PriorityDecomposition(r)
		for i := range table {
			sum := 0.0
			for j, v := range table[i] {
				if v < -1e-9 {
					t.Fatalf("negative substream %v at [%d][%d] for r=%v", v, i, j, r)
				}
				if j > i && v != 0 {
					t.Fatalf("non-triangular entry at [%d][%d] for r=%v", i, j, r)
				}
				sum += v
			}
			if math.Abs(sum-r[perm[i]]) > 1e-6*(1+r[perm[i]]) {
				t.Fatalf("row %d sums to %v, want %v (r=%v)", i, sum, r[perm[i]], r)
			}
		}
	})
}

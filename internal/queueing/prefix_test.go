package queueing

import (
	"math"
	"math/rand"
	"sort"
	"testing"
)

// This file pins the sorted prefix-sum kernels against the naive
// O(N²) double loops they replaced. The references below are verbatim
// copies of the pre-prefix-sum implementations; the tolerance contract
// they are held to is documented in docs/PERFORMANCE.md:
//
//   - bitwise agreement whenever every intermediate sum is exactly
//     representable (dyadic rates, a power-of-two μ), because then
//     reordering the summation cannot change any bit;
//   - otherwise agreement within a relative-absolute bound
//     |Δ| ≤ tol·(1 + max(|a|,|b|)) with tol = 1e-9, for total loads
//     bounded away from 1 (the G(x) = x/(1−x) amplification makes any
//     kernel — naive included — ill-conditioned at the overload
//     boundary, so random-input comparisons skip loads within 1e-9
//     of 1; the exact-boundary behavior is pinned separately with
//     dyadic inputs).

// naiveFairShareQueues is the pre-prefix-sum FairShare.Queues: a full
// inner min-scan per connection, summing in original index order.
func naiveFairShareQueues(t *testing.T, r []float64, mu float64) []float64 {
	t.Helper()
	n := len(r)
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	sort.SliceStable(idx, func(a, b int) bool { return r[idx[a]] < r[idx[b]] })
	q := make([]float64, n)
	sumQ := 0.0
	for pos, i := range idx {
		ri := r[i]
		if ri == 0 {
			q[i] = 0
			continue
		}
		load := 0.0
		for _, rk := range r {
			load += math.Min(rk, ri)
		}
		load /= mu
		if load >= 1 {
			for _, j := range idx[pos:] {
				q[j] = math.Inf(1)
			}
			return q
		}
		qi := (G(load) - sumQ) / float64(n-pos)
		if qi < 0 {
			qi = 0
		}
		q[i] = qi
		sumQ += qi
	}
	return q
}

// naiveFairShareLoads returns the naive cumulative class loads
// L_i = Σ_k min(r_k, r_i)/μ in sorted order, for boundary-proximity
// checks.
func naiveFairShareLoads(r []float64, mu float64) []float64 {
	n := len(r)
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	sort.SliceStable(idx, func(a, b int) bool { return r[idx[a]] < r[idx[b]] })
	loads := make([]float64, 0, n)
	for _, i := range idx {
		load := 0.0
		for _, rk := range r {
			load += math.Min(rk, r[i])
		}
		loads = append(loads, load/mu)
	}
	return loads
}

// naiveNonPreemptiveQueues is the pre-prefix-sum
// NonPreemptiveFairShare.Queues: per-class min-scans and a fresh
// Little sum per connection.
func naiveNonPreemptiveQueues(t *testing.T, r []float64, mu float64) []float64 {
	t.Helper()
	n := len(r)
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	sort.SliceStable(idx, func(a, b int) bool { return r[idx[a]] < r[idx[b]] })

	rhoTot := 0.0
	for _, ri := range r {
		rhoTot += ri / mu
	}
	w0 := math.Min(rhoTot, 1) / mu

	q := make([]float64, n)
	classSojourn := make([]float64, n)
	prevLoad := 0.0
	for j, i := range idx {
		load := 0.0
		for _, rk := range r {
			load += math.Min(rk, r[i])
		}
		load /= mu
		if load >= 1 {
			classSojourn[j] = math.Inf(1)
		} else {
			classSojourn[j] = w0/((1-prevLoad)*(1-load)) + 1/mu
		}
		prevLoad = math.Min(load, 1)
	}
	sortedRates := make([]float64, n)
	for j, i := range idx {
		sortedRates[j] = r[i]
	}
	for pos, i := range idx {
		if r[i] == 0 {
			q[i] = 0
			continue
		}
		total := 0.0
		prev := 0.0
		for j := 0; j <= pos; j++ {
			lambda := sortedRates[j] - prev
			prev = sortedRates[j]
			if lambda == 0 {
				continue
			}
			if math.IsInf(classSojourn[j], 1) {
				total = math.Inf(1)
				break
			}
			total += lambda * classSojourn[j]
		}
		q[i] = total
	}
	return q
}

// prefixTol is the documented summation-reordering tolerance for
// random (non-dyadic) inputs with loads bounded away from 1.
const prefixTol = 1e-9

// closeEnough is the tolerance contract: +Inf must match exactly,
// finite values within a mixed relative-absolute bound.
func closeEnough(a, b float64) bool {
	if math.IsInf(a, 1) || math.IsInf(b, 1) {
		return math.IsInf(a, 1) && math.IsInf(b, 1)
	}
	return math.Abs(a-b) <= prefixTol*(1+math.Max(math.Abs(a), math.Abs(b)))
}

// nearOverloadBoundary reports whether any cumulative class load sits
// within tol of 1, where the overload cutoff itself is the unstable
// quantity and naive-vs-prefix comparison is meaningless.
func nearOverloadBoundary(r []float64, mu float64) bool {
	for _, load := range naiveFairShareLoads(r, mu) {
		if math.Abs(load-1) <= prefixTol {
			return true
		}
	}
	return false
}

// randomRates draws a rate vector of the given class: mixes of
// uniform values, exact zeros, exact ties, and denormals, scaled to a
// target total load.
func randomRates(rng *rand.Rand, n int, mu, targetLoad float64) []float64 {
	r := make([]float64, n)
	tieVal := rng.Float64()
	for i := range r {
		switch rng.Intn(6) {
		case 0:
			r[i] = 0
		case 1:
			r[i] = tieVal // exact ties decided by sort stability
		case 2:
			r[i] = math.SmallestNonzeroFloat64 * float64(1+rng.Intn(9)) // ±denormal territory
		default:
			r[i] = rng.Float64()
		}
	}
	sum := 0.0
	for _, ri := range r {
		sum += ri
	}
	if sum < 1e-300 {
		// All-zero or denormal-only draws: scaling would overflow (and
		// 0·∞ would forge NaN rates). Use the vector as drawn.
		return r
	}
	scale := targetLoad * mu / sum
	for i := range r {
		r[i] *= scale
	}
	return r
}

// dyadicRates draws rates that are integer multiples of 2^-22, so
// every partial sum (and every (n−pos)·r_i product) is exactly
// representable and the prefix-sum kernel must agree bit for bit.
func dyadicRates(rng *rand.Rand, n int) []float64 {
	r := make([]float64, n)
	for i := range r {
		switch rng.Intn(4) {
		case 0:
			r[i] = 0
		case 1:
			r[i] = float64(1<<10) * 0x1p-22 // common tie value
		default:
			r[i] = float64(rng.Intn(1<<20)) * 0x1p-22
		}
	}
	return r
}

// checkAgainstNaive compares the prefix-sum ObserveInto of d against
// the given naive reference on one input, bitwise or within the
// tolerance contract.
func checkAgainstNaive(t *testing.T, d InPlace, scr *Scratch,
	naive func(*testing.T, []float64, float64) []float64,
	r []float64, mu float64, bitwise bool) {
	t.Helper()
	want := naive(t, r, mu)
	q := make([]float64, len(r))
	w := make([]float64, len(r))
	if err := d.ObserveInto(q, w, r, mu, scr); err != nil {
		t.Fatalf("%s.ObserveInto(%v, %v): %v", d.Name(), r, mu, err)
	}
	for i := range r {
		if bitwise {
			if !sameFloat(q[i], want[i]) {
				t.Errorf("%s: dyadic r=%v mu=%v: queue[%d] = %v (bits %x), naive %v (bits %x)",
					d.Name(), r, mu, i, q[i], math.Float64bits(q[i]), want[i], math.Float64bits(want[i]))
			}
		} else if !closeEnough(q[i], want[i]) {
			t.Errorf("%s: r=%v mu=%v: queue[%d] = %v, naive %v (|Δ| = %v)",
				d.Name(), r, mu, i, q[i], want[i], math.Abs(q[i]-want[i]))
		}
	}
}

// TestPropPrefixKernelsMatchNaive sweeps randomized rate vectors —
// zeros, exact ties, denormals, underload and clear overload — through
// both prefix-sum disciplines against the naive O(N²) references.
func TestPropPrefixKernelsMatchNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	kernels := []struct {
		d     InPlace
		naive func(*testing.T, []float64, float64) []float64
	}{
		{FairShare{}, naiveFairShareQueues},
		{NonPreemptiveFairShare{}, naiveNonPreemptiveQueues},
	}
	for _, k := range kernels {
		scr := new(Scratch)
		for trial := 0; trial < 300; trial++ {
			n := 1 + rng.Intn(64)
			if trial%17 == 0 {
				n = 200 // occasional larger vector
			}
			mu := 0.5 + rng.Float64()*3
			var targetLoad float64
			if trial%3 == 2 {
				targetLoad = 1.1 + rng.Float64()*2 // clear overload
			} else {
				targetLoad = rng.Float64() * 0.95 // bounded away from 1
			}
			r := randomRates(rng, n, mu, targetLoad)
			if nearOverloadBoundary(r, mu) {
				continue // ill-conditioned cutoff; pinned exactly below
			}
			checkAgainstNaive(t, k.d, scr, k.naive, r, mu, false)
		}
	}
}

// TestPropPrefixKernelsBitwiseOnDyadic: with dyadic rates and a
// power-of-two μ every intermediate sum is exact, so reordering the
// summation must not change a single bit — including the overload
// cutoff position.
func TestPropPrefixKernelsBitwiseOnDyadic(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	kernels := []struct {
		d     InPlace
		naive func(*testing.T, []float64, float64) []float64
	}{
		{FairShare{}, naiveFairShareQueues},
		{NonPreemptiveFairShare{}, naiveNonPreemptiveQueues},
	}
	mus := []float64{0.25, 0.5, 1, 2, 64}
	for _, k := range kernels {
		scr := new(Scratch)
		for trial := 0; trial < 300; trial++ {
			n := 1 + rng.Intn(48)
			mu := mus[rng.Intn(len(mus))]
			r := dyadicRates(rng, n)
			checkAgainstNaive(t, k.d, scr, k.naive, r, mu, true)
		}
	}
}

// TestFairShareOverloadBoundaryExact pins the cutoff at a load of
// exactly 1: rates and μ chosen so the top class load is 1.0 with no
// rounding anywhere. The overloaded connection must report +Inf queue
// and sojourn through every entry point — Queues, SojournTimes, and
// ObserveInto — while lower-rate connections keep finite queues.
func TestFairShareOverloadBoundaryExact(t *testing.T) {
	r := []float64{0.25, 0.25, 0.5} // L = 0.25+0.25+0.5 = 1 exactly at the top class
	mu := 1.0
	fs := FairShare{}
	q, err := fs.Queues(r, mu)
	if err != nil {
		t.Fatal(err)
	}
	w, err := fs.SojournTimes(r, mu)
	if err != nil {
		t.Fatal(err)
	}
	if !math.IsInf(q[2], 1) || !math.IsInf(w[2], 1) {
		t.Errorf("top class at load exactly 1: q[2]=%v w[2]=%v, want +Inf", q[2], w[2])
	}
	for i := 0; i < 2; i++ {
		if math.IsInf(q[i], 1) || q[i] < 0 {
			t.Errorf("protected connection %d has q=%v, want finite non-negative", i, q[i])
		}
		if !sameFloat(w[i], q[i]/r[i]) {
			t.Errorf("w[%d] = %v, want q/r = %v", i, w[i], q[i]/r[i])
		}
	}
	// The in-place variant must agree bit for bit (shared code path).
	q2 := make([]float64, 3)
	w2 := make([]float64, 3)
	if err := fs.ObserveInto(q2, w2, r, mu, new(Scratch)); err != nil {
		t.Fatal(err)
	}
	for i := range r {
		if !sameFloat(q[i], q2[i]) || !sameFloat(w[i], w2[i]) {
			t.Errorf("ObserveInto diverges from Queues at %d: q=%v/%v w=%v/%v", i, q2[i], q[i], w2[i], w[i])
		}
	}
	// And the naive reference agrees too: all sums here are exact.
	want := naiveFairShareQueues(t, r, mu)
	for i := range r {
		if !sameFloat(q[i], want[i]) {
			t.Errorf("queue[%d] = %v, naive %v", i, q[i], want[i])
		}
	}

	// Non-preemptive variant at the same exact boundary: the top class
	// sojourn is +Inf, so the high-rate connection's queue is +Inf.
	np := NonPreemptiveFairShare{}
	qn, err := np.Queues(r, mu)
	if err != nil {
		t.Fatal(err)
	}
	if !math.IsInf(qn[2], 1) {
		t.Errorf("non-preemptive top class at load exactly 1: q[2]=%v, want +Inf", qn[2])
	}
	for i := 0; i < 2; i++ {
		if math.IsInf(qn[i], 1) {
			t.Errorf("non-preemptive protected connection %d overloaded: q=%v", i, qn[i])
		}
	}
}

// TestFairShareTotalOverloadExact: every positive-rate connection
// overloaded when the lowest positive class already has load ≥ 1,
// zero-rate probes still protected, through both variants.
func TestFairShareTotalOverloadExact(t *testing.T) {
	r := []float64{0, 0.5, 0.5} // lowest positive class: 0 + 2·0.5 = 1
	mu := 1.0
	for _, d := range []InPlace{FairShare{}, NonPreemptiveFairShare{}} {
		q := make([]float64, 3)
		w := make([]float64, 3)
		if err := d.ObserveInto(q, w, r, mu, new(Scratch)); err != nil {
			t.Fatal(err)
		}
		if q[0] != 0 {
			t.Errorf("%s: zero-rate probe q=%v, want 0", d.Name(), q[0])
		}
		if !math.IsInf(q[1], 1) || !math.IsInf(q[2], 1) {
			t.Errorf("%s: total overload q=%v, want +Inf for both positive rates", d.Name(), q)
		}
		if !math.IsInf(w[1], 1) || !math.IsInf(w[2], 1) {
			t.Errorf("%s: total overload w=%v, want +Inf sojourns", d.Name(), w)
		}
		qq, err := d.Queues(r, mu)
		if err != nil {
			t.Fatal(err)
		}
		for i := range r {
			if !sameFloat(q[i], qq[i]) {
				t.Errorf("%s: Queues diverges from ObserveInto at %d: %v vs %v", d.Name(), i, qq[i], q[i])
			}
		}
	}
}

// TestPrefixKernelsZeroAlloc pins the new kernels at zero allocations
// per call in steady state (same style as TestNilTracerIsZeroAlloc):
// once the scratch has grown, sorting and both sweeps run entirely in
// caller- and scratch-owned memory.
func TestPrefixKernelsZeroAlloc(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	const n = 128
	mu := 2.0
	r := randomRates(rng, n, mu, 0.8)
	q := make([]float64, n)
	w := make([]float64, n)
	for _, d := range []InPlace{FIFO{}, FairShare{}, NonPreemptiveFairShare{}} {
		scr := new(Scratch)
		scr.Grow(n)
		if err := d.ObserveInto(q, w, r, mu, scr); err != nil {
			t.Fatal(err)
		}
		allocs := testing.AllocsPerRun(50, func() {
			if err := d.ObserveInto(q, w, r, mu, scr); err != nil {
				t.Fatal(err)
			}
		})
		if allocs != 0 {
			t.Errorf("%s.ObserveInto allocates %.1f objects per call, want 0", d.Name(), allocs)
		}
	}
}

// TestPriorityRowsMatchesDense: the streaming iterator and the dense
// PriorityDecomposition table are the same decomposition — same perm,
// same rows bit for bit — without the iterator ever holding more than
// one row.
func TestPriorityRowsMatchesDense(t *testing.T) {
	rng := rand.New(rand.NewSource(19))
	for trial := 0; trial < 50; trial++ {
		n := 1 + rng.Intn(12)
		r := make([]float64, n)
		for i := range r {
			r[i] = rng.Float64() * 5
			if rng.Intn(4) == 0 {
				r[i] = 0
			}
		}
		table, perm := PriorityDecomposition(r)
		it := NewPriorityRows(r)
		for pos := 0; ; pos++ {
			orig, row, ok := it.Next()
			if !ok {
				if pos != n {
					t.Fatalf("iterator stopped after %d of %d rows", pos, n)
				}
				break
			}
			if orig != perm[pos] || it.Perm()[pos] != perm[pos] {
				t.Fatalf("row %d original index %d, dense perm %d", pos, orig, perm[pos])
			}
			if len(row) != pos+1 {
				t.Fatalf("row %d has %d entries, want %d", pos, len(row), pos+1)
			}
			for j, v := range row {
				if !sameFloat(v, table[pos][j]) {
					t.Fatalf("row %d class %d: %v, dense %v", pos, j, v, table[pos][j])
				}
			}
			for j := pos + 1; j < n; j++ {
				if table[pos][j] != 0 {
					t.Fatalf("dense row %d class %d nonzero above the diagonal", pos, j)
				}
			}
		}
	}
}

// TestPriorityRowsStreamsLargeN exercises the streaming decomposition
// at a size where the dense table (N² floats) would be wasteful: row
// sums must reproduce each connection's rate without materializing
// anything beyond one row.
func TestPriorityRowsStreamsLargeN(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	const n = 4096
	r := make([]float64, n)
	for i := range r {
		r[i] = rng.Float64()
	}
	it := NewPriorityRows(r)
	rows := 0
	for {
		orig, row, ok := it.Next()
		if !ok {
			break
		}
		rows++
		sum := 0.0
		for _, v := range row {
			if v < 0 {
				t.Fatalf("negative substream rate %v for connection %d", v, orig)
			}
			sum += v
		}
		if math.Abs(sum-r[orig]) > 1e-9*(1+r[orig]) {
			t.Fatalf("connection %d: row sums to %v, rate is %v", orig, sum, r[orig])
		}
	}
	if rows != n {
		t.Fatalf("streamed %d rows, want %d", rows, n)
	}
}

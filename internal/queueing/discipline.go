// Package queueing implements the gateway service-discipline models of
// Section 2.2 of the paper: the function Q(r) mapping a vector of
// Poisson sending rates to per-connection average queue lengths at an
// exponential server, for the FIFO and Fair Share disciplines, together
// with the feasibility constraints any realizable non-stalling
// discipline must satisfy, the robustness bound of Theorem 5, and the
// Table 1 priority decomposition.
//
// Queue lengths here are mean numbers in system (M/M/1 convention), so
// the fundamental function is g(x) = x/(1−x): the mean number in
// system of an M/M/1 queue at load x. Overload (load ≥ 1) is
// represented by +Inf queue entries rather than an error, because
// overload is a legitimate transient state of the flow-control
// iteration: the congestion signal saturates at 1 and the sources back
// off.
package queueing

import (
	"fmt"
	"math"
	"slices"
)

// Discipline computes steady-state per-connection queue statistics for
// one gateway. Implementations must be symmetric in the rate vector
// (datagram gateways have no a-priori knowledge of connections) and
// time-scale invariant: Q(c·r, c·μ) = Q(r, μ).
type Discipline interface {
	// Name identifies the discipline ("FIFO", "FairShare").
	Name() string

	// Queues returns the average queue length Q_i of each connection,
	// given sending rates r and server rate mu. Overloaded connections
	// have Q_i = +Inf; zero-rate connections have Q_i = 0. It returns an
	// error for invalid input (negative or non-finite rates, mu <= 0).
	Queues(r []float64, mu float64) ([]float64, error)

	// SojournTimes returns the mean time in system W_i of each
	// connection's packets (Little's law W_i = Q_i / r_i), using the
	// analytic zero-rate limit for probe connections with r_i = 0.
	SojournTimes(r []float64, mu float64) ([]float64, error)
}

// G is the M/M/1 occupancy function g(x) = x/(1−x). It returns +Inf
// for x ≥ 1 and panics for negative or NaN x: a negative load is
// always a caller bug, never a model state.
func G(x float64) float64 {
	if x < 0 || math.IsNaN(x) {
		panic(fmt.Sprintf("queueing: g(%v) undefined", x))
	}
	if x >= 1 {
		return math.Inf(1)
	}
	return x / (1 - x)
}

// GInv inverts g: GInv(q) = q/(1+q), mapping a target total queue to
// the load that produces it. GInv(+Inf) = 1.
func GInv(q float64) float64 {
	if q < 0 || math.IsNaN(q) {
		panic(fmt.Sprintf("queueing: g⁻¹(%v) undefined", q))
	}
	if math.IsInf(q, 1) {
		return 1
	}
	return q / (1 + q)
}

// validate checks a rate vector and server rate, returning the total
// load ρ_tot = Σ r_i / μ.
func validate(r []float64, mu float64) (float64, error) {
	if len(r) == 0 {
		return 0, fmt.Errorf("queueing: empty rate vector")
	}
	if mu <= 0 || math.IsNaN(mu) || math.IsInf(mu, 0) {
		return 0, fmt.Errorf("queueing: invalid service rate %v", mu)
	}
	sum := 0.0
	for i, ri := range r {
		if ri < 0 || math.IsNaN(ri) || math.IsInf(ri, 0) {
			return 0, fmt.Errorf("queueing: invalid rate r[%d] = %v", i, ri)
		}
		sum += ri
	}
	return sum / mu, nil
}

// TotalQueue returns the aggregate mean queue Q_tot = g(ρ_tot). It is
// the same for every non-stalling discipline (work conservation), a
// fact the paper uses to make aggregate congestion signals insensitive
// to the service discipline.
func TotalQueue(r []float64, mu float64) (float64, error) {
	rho, err := validate(r, mu)
	if err != nil {
		return 0, err
	}
	return G(rho), nil
}

// Scratch holds the reusable working storage an InPlace discipline
// needs between calls: a sort-order buffer and two float64 buffers.
// The zero value is ready to use; buffers grow on demand and are then
// reused, so steady-state evaluation performs no allocations. A
// Scratch is not safe for concurrent use — give each goroutine its
// own.
type Scratch struct {
	idx    []int
	f1, f2 []float64
}

// Grow pre-sizes the scratch for an n-connection gateway, so that
// even the first ObserveInto call on it allocates nothing. Growing is
// otherwise automatic (and amortized free) on first use; pre-sizing
// exists for callers — core.Workspace — that size all hot columns at
// plan-compile time.
func (s *Scratch) Grow(n int) { s.grow(n) }

// grow sizes the scratch buffers for an n-connection gateway.
func (s *Scratch) grow(n int) {
	if cap(s.idx) < n {
		s.idx = make([]int, n)
		s.f1 = make([]float64, n)
		s.f2 = make([]float64, n)
	}
	s.idx = s.idx[:n]
	s.f1 = s.f1[:n]
	s.f2 = s.f2[:n]
}

// order fills s.idx with 0..n-1 stably sorted by ascending rate — the
// priority ordering shared by both Fair Share variants — and returns
// it.
func (s *Scratch) order(r []float64) []int {
	s.grow(len(r))
	for i := range s.idx {
		s.idx[i] = i
	}
	stableSortByRate(s.idx, r)
	return s.idx
}

// stableSortByRate stably sorts connection indices by ascending rate
// without allocating. Stability makes the ordering — and therefore
// every downstream queue value — identical to the sort.SliceStable
// call in the allocating Queues methods.
func stableSortByRate(idx []int, r []float64) {
	slices.SortStableFunc(idx, func(a, b int) int {
		switch {
		case r[a] < r[b]:
			return -1
		case r[a] > r[b]:
			return 1
		}
		return 0
	})
}

// InPlace is implemented by disciplines that can evaluate their queue
// model into caller-provided buffers without allocating. The results
// must be bit-identical to the allocating Queues and SojournTimes
// methods — ObserveInto is a performance path, never a different
// model.
type InPlace interface {
	Discipline

	// ObserveInto writes Queues into q and SojournTimes into w (both
	// of length len(r)), using scr for any intermediate storage.
	ObserveInto(q, w, r []float64, mu float64, scr *Scratch) error
}

// ObserveInto evaluates d's queues and sojourn times at (r, mu) into q
// and w. Disciplines implementing InPlace are evaluated without
// allocation; any other Discipline falls back to the allocating
// methods with results copied into the buffers, so callers get one
// uniform zero-garbage entry point either way (modulo the fallback's
// own allocations).
//
// The ffc:hotpath directive marks the zero-allocation contract; the
// hotalloc analyzer rejects allocating constructs in functions
// carrying it.
//
//ffc:hotpath
func ObserveInto(d Discipline, q, w, r []float64, mu float64, scr *Scratch) error {
	if len(q) != len(r) || len(w) != len(r) {
		return fmt.Errorf("queueing: buffers %d/%d for %d rates", len(q), len(w), len(r))
	}
	if ip, ok := d.(InPlace); ok {
		return ip.ObserveInto(q, w, r, mu, scr)
	}
	qq, err := d.Queues(r, mu)
	if err != nil {
		return err
	}
	ww, err := d.SojournTimes(r, mu)
	if err != nil {
		return err
	}
	copy(q, qq)
	copy(w, ww)
	return nil
}

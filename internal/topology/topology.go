// Package topology models the networks of Section 2.1 of the paper:
// communication lines connected by gateways, with one logical gateway
// per outgoing line (so gateways and lines are in one-to-one
// correspondence and all traffic on a line flows one way). Traffic is
// a static set of connections, each following a fixed route — an
// ordered list of gateways.
//
// A Network is immutable once built: construct it with a Builder, then
// query γ(i) (a connection's route) and Γ(a) (a gateway's connection
// set) freely. The immutability is what lets the flow-control iterator
// treat topology lookups as pure.
package topology

import (
	"fmt"
	"math"
	"math/rand"
)

// Gateway describes one logical gateway: an exponential server of rate
// Mu with infinite buffers, followed by a line with fixed propagation
// Latency.
type Gateway struct {
	Name    string  // human-readable identifier
	Mu      float64 // service rate μ^a (packets per unit time), > 0
	Latency float64 // propagation delay l_a of the outgoing line, >= 0
}

// Network is an immutable network and traffic topology: the sets γ(i)
// and Γ(a) of the paper.
type Network struct {
	gateways []Gateway
	routes   [][]int // routes[i]: ordered gateway indices of connection i
	conns    [][]int // conns[a]: connection indices through gateway a
}

// Builder assembles a Network. The zero value is ready to use.
type Builder struct {
	gateways []Gateway
	routes   [][]int
	err      error
}

// AddGateway appends a gateway and returns its index. Errors (e.g. a
// non-positive service rate) are deferred to Build so call sites can
// chain without per-call checks.
func (b *Builder) AddGateway(name string, mu, latency float64) int {
	idx := len(b.gateways)
	if b.err == nil {
		switch {
		case mu <= 0 || math.IsNaN(mu) || math.IsInf(mu, 0):
			b.err = fmt.Errorf("topology: gateway %q has invalid service rate %v", name, mu)
		case latency < 0 || math.IsNaN(latency) || math.IsInf(latency, 0):
			b.err = fmt.Errorf("topology: gateway %q has invalid latency %v", name, latency)
		}
	}
	b.gateways = append(b.gateways, Gateway{Name: name, Mu: mu, Latency: latency})
	return idx
}

// AddConnection appends a connection routed through the given gateway
// indices, in order, and returns the connection index.
func (b *Builder) AddConnection(path ...int) int {
	idx := len(b.routes)
	if b.err == nil {
		if len(path) == 0 {
			b.err = fmt.Errorf("topology: connection %d has an empty route", idx)
		}
		seen := make(map[int]bool, len(path))
		for _, a := range path {
			if a < 0 || a >= len(b.gateways) {
				b.err = fmt.Errorf("topology: connection %d references unknown gateway %d", idx, a)
				break
			}
			if seen[a] {
				b.err = fmt.Errorf("topology: connection %d visits gateway %d twice", idx, a)
				break
			}
			seen[a] = true
		}
	}
	b.routes = append(b.routes, append([]int(nil), path...))
	return idx
}

// Build validates and returns the immutable Network. A network must
// have at least one gateway and one connection, and every gateway must
// carry at least one connection (an idle gateway is a modelling
// mistake in this steady-state setting).
func (b *Builder) Build() (*Network, error) {
	if b.err != nil {
		return nil, b.err
	}
	if len(b.gateways) == 0 {
		return nil, fmt.Errorf("topology: network has no gateways")
	}
	if len(b.routes) == 0 {
		return nil, fmt.Errorf("topology: network has no connections")
	}
	conns := make([][]int, len(b.gateways))
	for i, path := range b.routes {
		for _, a := range path {
			conns[a] = append(conns[a], i)
		}
	}
	for a, cs := range conns {
		if len(cs) == 0 {
			return nil, fmt.Errorf("topology: gateway %d (%s) carries no connections", a, b.gateways[a].Name)
		}
	}
	return &Network{
		gateways: append([]Gateway(nil), b.gateways...),
		routes:   b.routes,
		conns:    conns,
	}, nil
}

// NumGateways returns the number of logical gateways.
func (n *Network) NumGateways() int { return len(n.gateways) }

// NumConnections returns the number of connections.
func (n *Network) NumConnections() int { return len(n.routes) }

// Gateway returns gateway a's parameters.
func (n *Network) Gateway(a int) Gateway { return n.gateways[a] }

// Route returns γ(i), the ordered gateway indices of connection i.
// The returned slice is shared; callers must not modify it.
func (n *Network) Route(i int) []int { return n.routes[i] }

// Connections returns Γ(a), the connection indices flowing through
// gateway a. The returned slice is shared; callers must not modify it.
func (n *Network) Connections(a int) []int { return n.conns[a] }

// NumAt returns N^a, the number of connections through gateway a.
func (n *Network) NumAt(a int) int { return len(n.conns[a]) }

// PathLatency returns the total propagation latency along connection
// i's route.
func (n *Network) PathLatency(i int) float64 {
	var l float64
	for _, a := range n.routes[i] {
		l += n.gateways[a].Latency
	}
	return l
}

// ScaleServers returns a copy of the network with every service rate
// multiplied by c. Time-scale invariance (Theorem 1) predicts steady
// states scale linearly under this map.
func (n *Network) ScaleServers(c float64) (*Network, error) {
	if c <= 0 || math.IsNaN(c) || math.IsInf(c, 0) {
		return nil, fmt.Errorf("topology: invalid scale factor %v", c)
	}
	var b Builder
	for _, g := range n.gateways {
		b.AddGateway(g.Name, g.Mu*c, g.Latency)
	}
	for _, path := range n.routes {
		b.AddConnection(path...)
	}
	return b.Build()
}

// WithLatencies returns a copy of the network with per-gateway
// latencies replaced. len(lat) must equal NumGateways. Theorem 1
// predicts TSI steady states are invariant under this map.
func (n *Network) WithLatencies(lat []float64) (*Network, error) {
	if len(lat) != len(n.gateways) {
		return nil, fmt.Errorf("topology: %d latencies for %d gateways", len(lat), len(n.gateways))
	}
	var b Builder
	for a, g := range n.gateways {
		b.AddGateway(g.Name, g.Mu, lat[a])
	}
	for _, path := range n.routes {
		b.AddConnection(path...)
	}
	return b.Build()
}

// SingleGateway builds the paper's canonical example: n connections
// sharing one gateway of rate mu with line latency latency.
func SingleGateway(n int, mu, latency float64) (*Network, error) {
	if n <= 0 {
		return nil, fmt.Errorf("topology: need at least 1 connection, got %d", n)
	}
	var b Builder
	g := b.AddGateway("gw", mu, latency)
	for i := 0; i < n; i++ {
		b.AddConnection(g)
	}
	return b.Build()
}

// ParkingLot builds the classic multi-bottleneck "parking lot": hops
// gateways in a line, one long connection traversing all of them, and
// one short cross connection entering and leaving at each hop. All
// gateways share rate mu and latency latency. The long connection has
// index 0.
func ParkingLot(hops int, mu, latency float64) (*Network, error) {
	if hops <= 0 {
		return nil, fmt.Errorf("topology: need at least 1 hop, got %d", hops)
	}
	var b Builder
	gws := make([]int, hops)
	for h := 0; h < hops; h++ {
		gws[h] = b.AddGateway(fmt.Sprintf("gw%d", h), mu, latency)
	}
	b.AddConnection(gws...) // the long connection
	for h := 0; h < hops; h++ {
		b.AddConnection(gws[h]) // one short cross connection per hop
	}
	return b.Build()
}

// Star builds a star: leaves gateways all feeding a shared hub. Each
// of the leaves connections crosses its own leaf gateway then the hub,
// so the hub carries all traffic and is the natural bottleneck when
// hubMu < leafMu·leaves.
func Star(leaves int, leafMu, hubMu, latency float64) (*Network, error) {
	if leaves <= 0 {
		return nil, fmt.Errorf("topology: need at least 1 leaf, got %d", leaves)
	}
	var b Builder
	hub := b.AddGateway("hub", hubMu, latency)
	for l := 0; l < leaves; l++ {
		leaf := b.AddGateway(fmt.Sprintf("leaf%d", l), leafMu, latency)
		b.AddConnection(leaf, hub)
	}
	return b.Build()
}

// Random builds a random connected topology: nGateways gateways with
// service rates drawn uniformly from [muLo, muHi], and nConnections
// connections each crossing a random subset of 1..maxPath distinct
// gateways. Gateways left idle are re-assigned one connection so Build
// succeeds. Randomness comes from rng, so topologies are reproducible
// from a seed.
func Random(rng *rand.Rand, nGateways, nConnections, maxPath int, muLo, muHi, latency float64) (*Network, error) {
	if nGateways <= 0 || nConnections <= 0 {
		return nil, fmt.Errorf("topology: need positive counts, got %d gateways, %d connections", nGateways, nConnections)
	}
	if maxPath <= 0 || maxPath > nGateways {
		return nil, fmt.Errorf("topology: maxPath %d outside [1,%d]", maxPath, nGateways)
	}
	if !(muLo > 0) || muHi < muLo {
		return nil, fmt.Errorf("topology: invalid service-rate range [%v,%v]", muLo, muHi)
	}
	var b Builder
	gws := make([]int, nGateways)
	for a := 0; a < nGateways; a++ {
		mu := muLo + rng.Float64()*(muHi-muLo)
		gws[a] = b.AddGateway(fmt.Sprintf("g%d", a), mu, latency)
	}
	used := make([]bool, nGateways)
	paths := make([][]int, nConnections)
	for i := 0; i < nConnections; i++ {
		plen := 1 + rng.Intn(maxPath)
		perm := rng.Perm(nGateways)[:plen]
		paths[i] = perm
		for _, a := range perm {
			used[a] = true
		}
	}
	// Route one extra pass of each unused gateway through connection 0's
	// path tail, keeping every gateway loaded.
	for a, u := range used {
		if !u {
			paths[0] = append(paths[0], a)
		}
	}
	for _, p := range paths {
		b.AddConnection(p...)
	}
	return b.Build()
}

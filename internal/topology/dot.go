package topology

import (
	"fmt"
	"io"
)

// WriteDOT renders the network as a Graphviz digraph: gateways as
// boxes annotated with μ and latency, and one colored edge path per
// connection. The output is deterministic, so it is safe to use in
// golden tests and documentation pipelines.
func WriteDOT(w io.Writer, n *Network, name string) error {
	if n == nil {
		return fmt.Errorf("topology: nil network")
	}
	if name == "" {
		name = "network"
	}
	var err error
	p := func(format string, args ...interface{}) {
		if err == nil {
			_, err = fmt.Fprintf(w, format, args...)
		}
	}
	p("digraph %q {\n", name)
	p("  rankdir=LR;\n  node [shape=box];\n")
	for a := 0; a < n.NumGateways(); a++ {
		g := n.Gateway(a)
		p("  g%d [label=\"%s\\nμ=%g l=%g\"];\n", a, g.Name, g.Mu, g.Latency)
	}
	colors := []string{"black", "blue", "red", "darkgreen", "purple", "orange", "brown", "cadetblue"}
	for i := 0; i < n.NumConnections(); i++ {
		color := colors[i%len(colors)]
		route := n.Route(i)
		p("  src%d [shape=circle, label=\"c%d\", color=%q];\n", i, i, color)
		p("  dst%d [shape=doublecircle, label=\"\", color=%q];\n", i, color)
		p("  src%d -> g%d [color=%q];\n", i, route[0], color)
		for h := 1; h < len(route); h++ {
			p("  g%d -> g%d [color=%q, label=\"c%d\"];\n", route[h-1], route[h], color, i)
		}
		p("  g%d -> dst%d [color=%q];\n", route[len(route)-1], i, color)
	}
	p("}\n")
	return err
}

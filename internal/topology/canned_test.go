package topology

import "testing"

func TestRing(t *testing.T) {
	net, err := Ring(5, 3, 1, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	if net.NumGateways() != 5 || net.NumConnections() != 5 {
		t.Fatalf("shape: %d gw, %d conn", net.NumGateways(), net.NumConnections())
	}
	// Every gateway carries exactly hops connections.
	for a := 0; a < 5; a++ {
		if net.NumAt(a) != 3 {
			t.Errorf("N^%d = %d, want 3", a, net.NumAt(a))
		}
	}
	// Connection 1's route wraps: gateways 1, 2, 3.
	r := net.Route(1)
	if len(r) != 3 || r[0] != 1 || r[1] != 2 || r[2] != 3 {
		t.Errorf("route(1) = %v", r)
	}
	// Wrapping route: connection 4 crosses 4, 0, 1.
	r = net.Route(4)
	if r[0] != 4 || r[1] != 0 || r[2] != 1 {
		t.Errorf("route(4) = %v", r)
	}
}

func TestRingErrors(t *testing.T) {
	if _, err := Ring(1, 1, 1, 0); err == nil {
		t.Error("want error for size < 2")
	}
	if _, err := Ring(4, 0, 1, 0); err == nil {
		t.Error("want error for hops < 1")
	}
	if _, err := Ring(4, 5, 1, 0); err == nil {
		t.Error("want error for hops > size")
	}
}

func TestRingFullHops(t *testing.T) {
	// hops == size: every connection crosses every gateway once.
	net, err := Ring(3, 3, 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	for a := 0; a < 3; a++ {
		if net.NumAt(a) != 3 {
			t.Errorf("N^%d = %d, want 3", a, net.NumAt(a))
		}
	}
}

func TestDumbbell(t *testing.T) {
	net, err := Dumbbell(3, 5, 1, 0.2)
	if err != nil {
		t.Fatal(err)
	}
	if net.NumGateways() != 7 || net.NumConnections() != 3 {
		t.Fatalf("shape: %d gw, %d conn", net.NumGateways(), net.NumConnections())
	}
	// The shared gateway (index 0) carries everyone.
	if net.NumAt(0) != 3 {
		t.Errorf("bottleneck N = %d, want 3", net.NumAt(0))
	}
	// Each access gateway carries one connection.
	for a := 1; a < 7; a++ {
		if net.NumAt(a) != 1 {
			t.Errorf("access %d N = %d, want 1", a, net.NumAt(a))
		}
	}
	// Routes are left → shared → right.
	r := net.Route(1)
	if len(r) != 3 || r[1] != 0 {
		t.Errorf("route(1) = %v, want middle hop at the bottleneck", r)
	}
	if net.Gateway(0).Mu != 1 || net.Gateway(1).Mu != 5 {
		t.Error("gateway rates misassigned")
	}
}

func TestDumbbellErrors(t *testing.T) {
	if _, err := Dumbbell(0, 1, 1, 0); err == nil {
		t.Error("want error for zero pairs")
	}
}

package topology

import (
	"errors"
	"strings"
	"testing"
)

func TestWriteDOT(t *testing.T) {
	net, err := ParkingLot(2, 1, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	var b strings.Builder
	if err := WriteDOT(&b, net, "lot"); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		`digraph "lot" {`,
		"g0 [label=\"gw0\\nμ=1 l=0.1\"]",
		"g0 -> g1", // the long connection's inter-gateway hop
		"src0 -> g0",
		"dst0",
		"}",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("DOT output missing %q:\n%s", want, out)
		}
	}
	// Deterministic output.
	var b2 strings.Builder
	if err := WriteDOT(&b2, net, "lot"); err != nil {
		t.Fatal(err)
	}
	if b2.String() != out {
		t.Error("DOT output should be deterministic")
	}
}

func TestWriteDOTDefaults(t *testing.T) {
	net, err := SingleGateway(1, 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	var b strings.Builder
	if err := WriteDOT(&b, net, ""); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), `digraph "network"`) {
		t.Errorf("default name missing:\n%s", b.String())
	}
	if err := WriteDOT(&b, nil, "x"); err == nil {
		t.Error("want error for nil network")
	}
}

type failWriter struct{}

func (failWriter) Write([]byte) (int, error) { return 0, errors.New("sink failure") }

func TestWriteDOTPropagatesErrors(t *testing.T) {
	net, err := SingleGateway(1, 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := WriteDOT(failWriter{}, net, "x"); err == nil {
		t.Error("want propagated write error")
	}
}

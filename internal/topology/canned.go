package topology

import "fmt"

// Ring builds a cycle of size gateways in which connection i enters at
// gateway i and traverses hops consecutive gateways (wrapping around).
// Every gateway then carries exactly hops connections, making the ring
// the canonical symmetric multi-bottleneck topology: the fair
// allocation is uniform, but no single gateway is "the" bottleneck.
func Ring(size, hops int, mu, latency float64) (*Network, error) {
	if size < 2 {
		return nil, fmt.Errorf("topology: ring needs at least 2 gateways, got %d", size)
	}
	if hops < 1 || hops > size {
		return nil, fmt.Errorf("topology: ring hop count %d outside [1,%d]", hops, size)
	}
	var b Builder
	gws := make([]int, size)
	for i := 0; i < size; i++ {
		gws[i] = b.AddGateway(fmt.Sprintf("ring%d", i), mu, latency)
	}
	for i := 0; i < size; i++ {
		path := make([]int, hops)
		for h := 0; h < hops; h++ {
			path[h] = gws[(i+h)%size]
		}
		b.AddConnection(path...)
	}
	return b.Build()
}

// Dumbbell builds the classic dumbbell: left access gateways and right
// access gateways joined by one shared bottleneck link. Connection k
// enters at left gateway k, crosses the bottleneck, and exits through
// right gateway k. Access gateways have rate accessMu; the shared
// gateway has rate bottleneckMu, and is the bottleneck whenever
// bottleneckMu < pairs·accessMu.
func Dumbbell(pairs int, accessMu, bottleneckMu, latency float64) (*Network, error) {
	if pairs < 1 {
		return nil, fmt.Errorf("topology: dumbbell needs at least 1 pair, got %d", pairs)
	}
	var b Builder
	shared := b.AddGateway("bottleneck", bottleneckMu, latency)
	for k := 0; k < pairs; k++ {
		left := b.AddGateway(fmt.Sprintf("left%d", k), accessMu, latency)
		right := b.AddGateway(fmt.Sprintf("right%d", k), accessMu, latency)
		b.AddConnection(left, shared, right)
	}
	return b.Build()
}

package topology

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestBuilderBasic(t *testing.T) {
	var b Builder
	g0 := b.AddGateway("a", 1, 0.1)
	g1 := b.AddGateway("b", 2, 0.2)
	c0 := b.AddConnection(g0, g1)
	c1 := b.AddConnection(g1)
	net, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	if net.NumGateways() != 2 || net.NumConnections() != 2 {
		t.Fatalf("dims %d gw, %d conn", net.NumGateways(), net.NumConnections())
	}
	if got := net.Route(c0); len(got) != 2 || got[0] != g0 || got[1] != g1 {
		t.Errorf("route 0 = %v", got)
	}
	if got := net.Connections(g1); len(got) != 2 || got[0] != c0 || got[1] != c1 {
		t.Errorf("Γ(g1) = %v", got)
	}
	if net.NumAt(g0) != 1 {
		t.Errorf("N^g0 = %d, want 1", net.NumAt(g0))
	}
	if g := net.Gateway(g1); g.Name != "b" || g.Mu != 2 || g.Latency != 0.2 {
		t.Errorf("gateway = %+v", g)
	}
}

func TestBuilderErrors(t *testing.T) {
	cases := []struct {
		name  string
		build func() *Builder
	}{
		{"bad mu", func() *Builder {
			var b Builder
			b.AddGateway("g", 0, 0)
			b.AddConnection(0)
			return &b
		}},
		{"negative mu", func() *Builder {
			var b Builder
			b.AddGateway("g", -1, 0)
			b.AddConnection(0)
			return &b
		}},
		{"NaN mu", func() *Builder {
			var b Builder
			b.AddGateway("g", math.NaN(), 0)
			b.AddConnection(0)
			return &b
		}},
		{"negative latency", func() *Builder {
			var b Builder
			b.AddGateway("g", 1, -1)
			b.AddConnection(0)
			return &b
		}},
		{"empty route", func() *Builder {
			var b Builder
			b.AddGateway("g", 1, 0)
			b.AddConnection()
			return &b
		}},
		{"unknown gateway", func() *Builder {
			var b Builder
			b.AddGateway("g", 1, 0)
			b.AddConnection(5)
			return &b
		}},
		{"duplicate gateway in route", func() *Builder {
			var b Builder
			g := b.AddGateway("g", 1, 0)
			b.AddConnection(g, g)
			return &b
		}},
		{"no gateways", func() *Builder { return &Builder{} }},
		{"no connections", func() *Builder {
			var b Builder
			b.AddGateway("g", 1, 0)
			return &b
		}},
		{"idle gateway", func() *Builder {
			var b Builder
			b.AddGateway("g0", 1, 0)
			b.AddGateway("g1", 1, 0)
			b.AddConnection(0)
			return &b
		}},
	}
	for _, c := range cases {
		if _, err := c.build().Build(); err == nil {
			t.Errorf("%s: want error", c.name)
		}
	}
}

func TestPathLatency(t *testing.T) {
	var b Builder
	g0 := b.AddGateway("a", 1, 0.5)
	g1 := b.AddGateway("b", 1, 0.25)
	b.AddConnection(g0, g1)
	net, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	if got := net.PathLatency(0); math.Abs(got-0.75) > 1e-12 {
		t.Errorf("path latency = %v, want 0.75", got)
	}
}

func TestScaleServers(t *testing.T) {
	net, err := SingleGateway(3, 2, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	scaled, err := net.ScaleServers(10)
	if err != nil {
		t.Fatal(err)
	}
	if scaled.Gateway(0).Mu != 20 {
		t.Errorf("scaled mu = %v, want 20", scaled.Gateway(0).Mu)
	}
	if scaled.Gateway(0).Latency != 0.1 {
		t.Errorf("latency should be unchanged, got %v", scaled.Gateway(0).Latency)
	}
	if net.Gateway(0).Mu != 2 {
		t.Error("original modified")
	}
	for _, bad := range []float64{0, -1, math.NaN(), math.Inf(1)} {
		if _, err := net.ScaleServers(bad); err == nil {
			t.Errorf("ScaleServers(%v) should fail", bad)
		}
	}
}

func TestWithLatencies(t *testing.T) {
	net, err := SingleGateway(2, 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	mod, err := net.WithLatencies([]float64{3})
	if err != nil {
		t.Fatal(err)
	}
	if mod.Gateway(0).Latency != 3 {
		t.Errorf("latency = %v, want 3", mod.Gateway(0).Latency)
	}
	if _, err := net.WithLatencies([]float64{1, 2}); err == nil {
		t.Error("want length error")
	}
}

func TestSingleGateway(t *testing.T) {
	net, err := SingleGateway(5, 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	if net.NumGateways() != 1 || net.NumConnections() != 5 || net.NumAt(0) != 5 {
		t.Errorf("unexpected shape: %d gw, %d conn, N=%d",
			net.NumGateways(), net.NumConnections(), net.NumAt(0))
	}
	if _, err := SingleGateway(0, 1, 0); err == nil {
		t.Error("want error for zero connections")
	}
}

func TestParkingLot(t *testing.T) {
	net, err := ParkingLot(3, 1, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	if net.NumGateways() != 3 || net.NumConnections() != 4 {
		t.Fatalf("shape: %d gw, %d conn", net.NumGateways(), net.NumConnections())
	}
	// Connection 0 is the long one.
	if len(net.Route(0)) != 3 {
		t.Errorf("long route length %d, want 3", len(net.Route(0)))
	}
	// Every gateway carries the long connection plus one cross.
	for a := 0; a < 3; a++ {
		if net.NumAt(a) != 2 {
			t.Errorf("N^%d = %d, want 2", a, net.NumAt(a))
		}
	}
	if _, err := ParkingLot(0, 1, 0); err == nil {
		t.Error("want error for zero hops")
	}
}

func TestStar(t *testing.T) {
	net, err := Star(4, 10, 5, 0)
	if err != nil {
		t.Fatal(err)
	}
	if net.NumGateways() != 5 || net.NumConnections() != 4 {
		t.Fatalf("shape: %d gw, %d conn", net.NumGateways(), net.NumConnections())
	}
	if net.NumAt(0) != 4 { // hub carries everything
		t.Errorf("hub N = %d, want 4", net.NumAt(0))
	}
	for a := 1; a < 5; a++ {
		if net.NumAt(a) != 1 {
			t.Errorf("leaf %d N = %d, want 1", a, net.NumAt(a))
		}
	}
	if _, err := Star(0, 1, 1, 0); err == nil {
		t.Error("want error for zero leaves")
	}
}

func TestRandomValidation(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	if _, err := Random(rng, 0, 1, 1, 1, 2, 0); err == nil {
		t.Error("want error for zero gateways")
	}
	if _, err := Random(rng, 2, 0, 1, 1, 2, 0); err == nil {
		t.Error("want error for zero connections")
	}
	if _, err := Random(rng, 2, 1, 3, 1, 2, 0); err == nil {
		t.Error("want error for maxPath > gateways")
	}
	if _, err := Random(rng, 2, 1, 1, 0, 2, 0); err == nil {
		t.Error("want error for non-positive muLo")
	}
	if _, err := Random(rng, 2, 1, 1, 2, 1, 0); err == nil {
		t.Error("want error for muHi < muLo")
	}
}

// Property: random topologies are structurally consistent — Γ and γ
// are inverse incidence relations and every gateway is loaded.
func TestPropRandomConsistency(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		nG := 1 + rng.Intn(6)
		nC := 1 + rng.Intn(8)
		net, err := Random(rng, nG, nC, 1+rng.Intn(nG), 0.5, 2.0, 0.1)
		if err != nil {
			return false
		}
		// Γ/γ inverse consistency.
		for i := 0; i < net.NumConnections(); i++ {
			for _, a := range net.Route(i) {
				found := false
				for _, j := range net.Connections(a) {
					if j == i {
						found = true
						break
					}
				}
				if !found {
					return false
				}
			}
		}
		for a := 0; a < net.NumGateways(); a++ {
			if net.NumAt(a) == 0 {
				return false
			}
			for _, i := range net.Connections(a) {
				found := false
				for _, g := range net.Route(i) {
					if g == a {
						found = true
						break
					}
				}
				if !found {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// Property: ScaleServers composes multiplicatively and preserves
// topology.
func TestPropScaleCompose(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		net, err := Random(rng, 3, 4, 2, 1, 5, 0)
		if err != nil {
			return false
		}
		a, err := net.ScaleServers(2)
		if err != nil {
			return false
		}
		b, err := a.ScaleServers(3)
		if err != nil {
			return false
		}
		c, err := net.ScaleServers(6)
		if err != nil {
			return false
		}
		for g := 0; g < net.NumGateways(); g++ {
			if math.Abs(b.Gateway(g).Mu-c.Gateway(g).Mu) > 1e-9 {
				return false
			}
		}
		return b.NumConnections() == net.NumConnections()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

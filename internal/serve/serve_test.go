package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"github.com/nettheory/feedbackflow/internal/obs"
)

const testScenario = `{
  "name": "two-bottleneck",
  "discipline": "fairshare",
  "feedback": "individual",
  "gateways": [
    {"name": "A", "mu": 1.0, "latency": 0.1},
    {"name": "B", "mu": 2.0, "latency": 0.1}
  ],
  "connections": [
    {"path": ["A", "B"], "law": {"kind": "additive", "eta": 0.05, "bss": 0.5}},
    {"path": ["A"],      "law": {"kind": "additive", "eta": 0.05, "bss": 0.5}},
    {"path": ["B"],      "law": {"kind": "additive", "eta": 0.05, "bss": 0.5}}
  ]
}`

func newTestServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	s := New(cfg)
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return s, ts
}

func post(t *testing.T, url, body string) (*http.Response, []byte) {
	t.Helper()
	resp, err := http.Post(url, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	data, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	return resp, data
}

// TestServeRunCacheHitIsByteIdentical is the serve-smoke contract:
// POST the same scenario twice; the second response must be a cache
// hit and byte-identical to the first.
func TestServeRunCacheHitIsByteIdentical(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 2})

	resp1, body1 := post(t, ts.URL+"/run", testScenario)
	if resp1.StatusCode != http.StatusOK {
		t.Fatalf("first POST: %d %s", resp1.StatusCode, body1)
	}
	if h := resp1.Header.Get("X-FFCD-Cache"); h != "miss" {
		t.Fatalf("first POST cache header = %q, want miss", h)
	}

	resp2, body2 := post(t, ts.URL+"/run", testScenario)
	if resp2.StatusCode != http.StatusOK {
		t.Fatalf("second POST: %d %s", resp2.StatusCode, body2)
	}
	if h := resp2.Header.Get("X-FFCD-Cache"); h != "hit" {
		t.Fatalf("second POST cache header = %q, want hit", h)
	}
	if !bytes.Equal(body1, body2) {
		t.Fatal("cache hit is not byte-identical to the original miss")
	}

	var rep obs.RunReport
	if err := json.Unmarshal(body1, &rep); err != nil {
		t.Fatalf("response is not a run report: %v", err)
	}
	if rep.Schema != obs.RunReportSchema || rep.Scenario != "two-bottleneck" || !rep.Converged {
		t.Errorf("report: schema=%q scenario=%q converged=%v", rep.Schema, rep.Scenario, rep.Converged)
	}
}

// TestServeCanonicalization: key order, whitespace, and kind aliases
// hit the same cache entry.
func TestServeCanonicalization(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 2})
	_, body1 := post(t, ts.URL+"/run", testScenario)

	reordered := `{"discipline":"FS","feedback":"individual","name":"two-bottleneck",
	  "connections":[
	    {"law":{"bss":0.5,"eta":0.05,"kind":"ADDITIVE"},"path":["A","B"]},
	    {"law":{"bss":0.5,"eta":0.05,"kind":"additive"},"path":["A"]},
	    {"law":{"bss":0.5,"eta":0.05,"kind":"additive"},"path":["B"]}],
	  "gateways":[{"latency":0.1,"mu":1,"name":"A"},{"latency":0.1,"mu":2,"name":"B"}]}`
	resp, body2 := post(t, ts.URL+"/run", reordered)
	if h := resp.Header.Get("X-FFCD-Cache"); h != "hit" {
		t.Fatalf("reordered spec missed the cache (header %q)", h)
	}
	if !bytes.Equal(body1, body2) {
		t.Fatal("reordered spec served different bytes")
	}
}

func TestServeRejectsBadRequests(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 2})
	cases := []struct {
		name, body string
	}{
		{"trailing garbage", `{"name":"x"}!!!`},
		{"unknown field", `{"nam":"typo"}`},
		{"no gateways", `{"name":"x"}`},
		{"negative maxSteps", `{"maxSteps":-1,"gateways":[{"name":"G","mu":1}],"connections":[{"path":["G"],"law":{"eta":0.1,"bss":0.5}}]}`},
		{"negative initial", `{"initial":[-1],"gateways":[{"name":"G","mu":1}],"connections":[{"path":["G"],"law":{"eta":0.1,"bss":0.5}}]}`},
		{"bad fault spec", `{"scenario":{"gateways":[{"name":"G","mu":1}],"connections":[{"path":["G"],"law":{"eta":0.1,"bss":0.5}}]},"fault":"bogus==="}`},
		{"unknown envelope field", `{"scenario":{"gateways":[{"name":"G","mu":1}],"connections":[{"path":["G"],"law":{"eta":0.1,"bss":0.5}}]},"fult":"x"}`},
		{"not json", `hello`},
	}
	for _, c := range cases {
		resp, body := post(t, ts.URL+"/run", c.body)
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s: status %d (%s), want 400", c.name, resp.StatusCode, body)
			continue
		}
		var e struct {
			Error string `json:"error"`
		}
		if err := json.Unmarshal(body, &e); err != nil || e.Error == "" {
			t.Errorf("%s: error body %q", c.name, body)
		}
	}
	if resp, _ := post(t, ts.URL+"/healthz", ""); resp.StatusCode != http.StatusOK {
		t.Errorf("healthz after bad requests: %d", resp.StatusCode)
	}
}

// TestServeFaultEnvelope: a scenario+fault envelope runs the
// robustness protocol and the report carries fault and recovery
// sections; the second POST is a hit.
func TestServeFaultEnvelope(t *testing.T) {
	env := fmt.Sprintf(`{"scenario": %s, "fault": "seed=3,loss=0.5@10-40"}`, testScenario)
	_, ts := newTestServer(t, Config{Workers: 2})
	resp, body := post(t, ts.URL+"/run", env)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("fault run: %d %s", resp.StatusCode, body)
	}
	var rep obs.RunReport
	if err := json.Unmarshal(body, &rep); err != nil {
		t.Fatal(err)
	}
	if rep.Fault == nil || rep.Recovery == nil {
		t.Fatalf("fault run report lacks fault/recovery sections: %s", body)
	}
	if rep.Fault.SignalsLost == 0 {
		t.Error("loss fault injected nothing")
	}
	resp2, body2 := post(t, ts.URL+"/run", env)
	if h := resp2.Header.Get("X-FFCD-Cache"); h != "hit" {
		t.Fatalf("second fault POST: header %q, want hit", h)
	}
	if !bytes.Equal(body, body2) {
		t.Fatal("fault-run hit is not byte-identical")
	}
	// The same scenario without the fault is a different content
	// address.
	resp3, _ := post(t, ts.URL+"/run", testScenario)
	if h := resp3.Header.Get("X-FFCD-Cache"); h != "miss" {
		t.Fatalf("plain scenario shared the faulted entry (header %q)", h)
	}
}

// TestServeSingleflight: concurrent identical requests solve once.
// Run under -race by make serve-smoke and CI.
func TestServeSingleflight(t *testing.T) {
	s, ts := newTestServer(t, Config{Workers: 4, Queue: 16})
	var solves atomic.Int64
	s.testHookSolve = func() {
		solves.Add(1)
		time.Sleep(50 * time.Millisecond) // hold the flight open so every request coalesces
	}

	const n = 12
	var wg sync.WaitGroup
	bodies := make([][]byte, n)
	errs := make([]error, n)
	for i := 0; i < n; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			resp, err := http.Post(ts.URL+"/run", "application/json", strings.NewReader(testScenario))
			if err != nil {
				errs[i] = err
				return
			}
			defer resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				errs[i] = fmt.Errorf("status %d", resp.StatusCode)
				return
			}
			bodies[i], errs[i] = io.ReadAll(resp.Body)
		}()
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("request %d: %v", i, err)
		}
		if !bytes.Equal(bodies[i], bodies[0]) {
			t.Fatalf("request %d saw different bytes", i)
		}
	}
	if got := solves.Load(); got != 1 {
		t.Fatalf("%d concurrent identical requests ran %d solves, want 1", n, got)
	}
	if snap := s.CacheSnapshot(); snap["runcache.dedup_waits"].(int64) != n-1 {
		t.Errorf("dedup_waits = %v, want %d", snap["runcache.dedup_waits"], n-1)
	}
}

// TestServeBackpressure429: with one worker, no queue, and a blocked
// solve, a second distinct scenario is rejected with 429; after the
// block clears it succeeds.
func TestServeBackpressure429(t *testing.T) {
	s, ts := newTestServer(t, Config{Workers: 1, Queue: 1})
	block := make(chan struct{})
	var once sync.Once
	s.testHookSolve = func() { once.Do(func() { <-block }) }

	scen := func(i int) string {
		return fmt.Sprintf(`{"name":"s%d","gateways":[{"name":"G","mu":1}],"connections":[{"path":["G"],"law":{"eta":0.1,"bss":0.5}}]}`, i)
	}

	// Fill the worker and the one queue slot with blocked solves.
	started := make(chan struct{}, 2)
	done := make(chan struct{}, 2)
	for i := 0; i < 2; i++ {
		i := i
		go func() {
			started <- struct{}{}
			resp, err := http.Post(ts.URL+"/run", "application/json", strings.NewReader(scen(i)))
			if err == nil {
				resp.Body.Close()
			}
			done <- struct{}{}
		}()
	}
	<-started
	<-started
	// Wait until both in-flight solves occupy the admission queue.
	deadline := time.After(5 * time.Second)
	for {
		if s.Snapshot()["serve.queue_occupancy"].(float64) >= 2 ||
			len(s.queue) == 2 {
			break
		}
		select {
		case <-deadline:
			t.Fatal("admission queue never filled")
		case <-time.After(5 * time.Millisecond):
		}
	}

	resp, body := post(t, ts.URL+"/run", scen(2))
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("over-capacity request: %d %s, want 429", resp.StatusCode, body)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("429 without Retry-After")
	}

	close(block)
	<-done
	<-done
	resp, body = post(t, ts.URL+"/run", scen(2))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("after drain: %d %s", resp.StatusCode, body)
	}
	if n := s.Snapshot()["serve.rejected"].(int64); n != 1 {
		t.Errorf("rejected counter = %d, want 1", n)
	}
}

// TestServeBatch: a batch with a hit, a distinct run, and a bad item
// returns per-item results in order.
func TestServeBatch(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 4})
	_, _ = post(t, ts.URL+"/run", testScenario) // prime the cache

	other := `{"name":"other","gateways":[{"name":"G","mu":1}],"connections":[{"path":["G"],"law":{"eta":0.1,"bss":0.5}}]}`
	batch := fmt.Sprintf(`{"runs": [%s, %s, {"nam":"typo"}]}`, testScenario, other)
	resp, body := post(t, ts.URL+"/batch", batch)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("batch: %d %s", resp.StatusCode, body)
	}
	var out struct {
		Schema  string `json:"schema"`
		Results []struct {
			Cache  string          `json:"cache"`
			Report json.RawMessage `json:"report"`
			Error  string          `json:"error"`
		} `json:"results"`
	}
	if err := json.Unmarshal(body, &out); err != nil {
		t.Fatal(err)
	}
	if out.Schema != BatchReportSchema {
		t.Errorf("schema = %q", out.Schema)
	}
	if len(out.Results) != 3 {
		t.Fatalf("%d results, want 3", len(out.Results))
	}
	if out.Results[0].Cache != "hit" || len(out.Results[0].Report) == 0 {
		t.Errorf("item 0: cache=%q", out.Results[0].Cache)
	}
	if out.Results[1].Cache != "miss" || len(out.Results[1].Report) == 0 {
		t.Errorf("item 1: cache=%q error=%q", out.Results[1].Cache, out.Results[1].Error)
	}
	if out.Results[2].Error == "" || len(out.Results[2].Report) != 0 {
		t.Errorf("item 2 should carry an error, got %+v", out.Results[2])
	}

	// An oversized batch is rejected outright.
	var runs []string
	for i := 0; i < 3; i++ {
		runs = append(runs, testScenario)
	}
	_, ts2 := newTestServer(t, Config{Workers: 2, MaxBatch: 2})
	resp, _ = post(t, ts2.URL+"/batch", fmt.Sprintf(`{"runs":[%s]}`, strings.Join(runs, ",")))
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("oversized batch: %d, want 400", resp.StatusCode)
	}
}

func TestServeHealthzAndMetrics(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 2})
	_, _ = post(t, ts.URL+"/run", testScenario)

	resp, body := post(t, ts.URL+"/healthz", "")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz: %d", resp.StatusCode)
	}
	var h struct {
		Status string `json:"status"`
	}
	if err := json.Unmarshal(body, &h); err != nil || h.Status != "ok" {
		t.Fatalf("healthz body %q (%v)", body, err)
	}

	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, _ = io.ReadAll(resp.Body)
	resp.Body.Close()
	var m map[string]json.RawMessage
	if err := json.Unmarshal(body, &m); err != nil {
		t.Fatalf("/metrics is not valid JSON: %v\n%s", err, body)
	}
	for _, key := range []string{"feedbackflow.serve", "feedbackflow.runcache", "feedbackflow.parallel"} {
		if _, ok := m[key]; !ok {
			t.Errorf("/metrics lacks %q", key)
		}
	}
	var cache map[string]interface{}
	if err := json.Unmarshal(m["feedbackflow.runcache"], &cache); err != nil {
		t.Fatal(err)
	}
	if cache["runcache.misses"].(float64) < 1 {
		t.Errorf("cache misses not counted: %v", cache)
	}
}

// TestServeGracefulShutdownDrainsInflight: cancelling the serve
// context while a solve is in flight lets the request complete with a
// 200 before ListenAndServe returns.
func TestServeGracefulShutdownDrainsInflight(t *testing.T) {
	s := New(Config{Workers: 2})
	inSolve := make(chan struct{})
	release := make(chan struct{})
	var once sync.Once
	s.testHookSolve = func() { once.Do(func() { close(inSolve); <-release }) }

	ctx, cancel := context.WithCancel(context.Background())
	addrc := make(chan net.Addr, 1)
	served := make(chan error, 1)
	go func() {
		served <- s.ListenAndServe(ctx, "127.0.0.1:0", 10*time.Second, func(a net.Addr) { addrc <- a })
	}()
	addr := <-addrc

	reqDone := make(chan error, 1)
	var status int
	var body1 []byte
	go func() {
		resp, err := http.Post("http://"+addr.String()+"/run", "application/json", strings.NewReader(testScenario))
		if err != nil {
			reqDone <- err
			return
		}
		defer resp.Body.Close()
		status = resp.StatusCode
		body1, err = io.ReadAll(resp.Body)
		reqDone <- err
	}()

	<-inSolve // the solve is holding a worker slot
	cancel()  // SIGTERM equivalent: stop accepting, start draining

	select {
	case err := <-served:
		t.Fatalf("server exited before the in-flight run finished: %v", err)
	case <-time.After(100 * time.Millisecond):
	}

	close(release)
	if err := <-reqDone; err != nil {
		t.Fatalf("in-flight request failed during drain: %v", err)
	}
	if status != http.StatusOK {
		t.Fatalf("in-flight request status %d during drain", status)
	}
	if len(body1) == 0 {
		t.Fatal("in-flight request got an empty body")
	}
	select {
	case err := <-served:
		if err != nil {
			t.Fatalf("ListenAndServe: %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("server did not shut down after draining")
	}
}

// TestServeHealthzDrainFlip pins the drain-window status flip: a
// draining daemon must answer /healthz with 503 so a gateway health
// probe stops routing to a replica that is about to disappear, while
// /run keeps serving for the in-flight window.
func TestServeHealthzDrainFlip(t *testing.T) {
	s, ts := newTestServer(t, Config{Workers: 2})

	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz before drain: %d, want 200", resp.StatusCode)
	}

	s.BeginDrain()
	if !s.Draining() {
		t.Fatal("Draining() = false after BeginDrain")
	}
	resp, err = http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("healthz during drain: %d, want 503 (body %s)", resp.StatusCode, body)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("draining /healthz carries no Retry-After")
	}
	if !strings.Contains(string(body), `"status":"draining"`) {
		t.Errorf("draining /healthz body = %s, want status \"draining\"", body)
	}

	// The flip gates routing, not service: in-flight-window traffic on
	// /run still succeeds while the HTTP server drains.
	if resp, body := post(t, ts.URL+"/run", testScenario); resp.StatusCode != http.StatusOK {
		t.Fatalf("/run during drain window: %d: %s", resp.StatusCode, body)
	}
}

// TestServeTraceIDPropagation pins the end-to-end trace contract: a
// request carrying an upstream X-FFCD-Trace-ID (an ffcgw forwarding
// its span) is served under that identity — the response echoes it and
// the replica's own span event adopts it — while garbage in the header
// is ignored.
func TestServeTraceIDPropagation(t *testing.T) {
	sink := &traceSink{}
	_, ts := newTestServer(t, Config{Workers: 2, Tracer: obs.NewTracer(sink)})

	const upstream = "00c0ffee00c0ffee"
	req, err := http.NewRequest(http.MethodPost, ts.URL+"/run", strings.NewReader(testScenario))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("X-FFCD-Trace-ID", upstream)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if got := resp.Header.Get("X-FFCD-Trace-ID"); got != upstream {
		t.Fatalf("propagated trace ID: response header %q, want %q", got, upstream)
	}
	evs := sink.events
	if len(evs) != 1 || evs[0].Trace != upstream {
		t.Fatalf("span events %+v, want exactly one carrying %q", evs, upstream)
	}

	// A malformed inbound ID falls back to a fresh local one.
	req2, _ := http.NewRequest(http.MethodPost, ts.URL+"/run", strings.NewReader(testScenario))
	req2.Header.Set("X-FFCD-Trace-ID", "not-a-trace-id!!")
	resp2, err := http.DefaultClient.Do(req2)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp2.Body)
	resp2.Body.Close()
	got := resp2.Header.Get("X-FFCD-Trace-ID")
	if len(got) != 16 || got == upstream {
		t.Fatalf("malformed inbound ID: response header %q, want a fresh 16-hex ID", got)
	}

	// With tracing off, a propagated ID is still echoed (the gateway's
	// identity survives the replica) even though no span is recorded.
	_, ts2 := newTestServer(t, Config{Workers: 2})
	req3, _ := http.NewRequest(http.MethodPost, ts2.URL+"/run", strings.NewReader(testScenario))
	req3.Header.Set("X-FFCD-Trace-ID", upstream)
	resp3, err := http.DefaultClient.Do(req3)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp3.Body)
	resp3.Body.Close()
	if got := resp3.Header.Get("X-FFCD-Trace-ID"); got != upstream {
		t.Fatalf("tracing-off echo: response header %q, want %q", got, upstream)
	}
}

// TestCanonicalKeyMatchesCache pins the gateway routing contract:
// CanonicalKey over equivalent request bodies (key order, whitespace,
// bare vs envelope form) yields one key, distinct scenarios yield
// distinct keys, and garbage is rejected with the same strictness as
// POST /run.
func TestCanonicalKeyMatchesCache(t *testing.T) {
	k1, err := CanonicalKey([]byte(testScenario))
	if err != nil {
		t.Fatal(err)
	}
	// Same scenario, reformatted and envelope-wrapped.
	var spec map[string]interface{}
	if err := json.Unmarshal([]byte(testScenario), &spec); err != nil {
		t.Fatal(err)
	}
	compact, err := json.Marshal(spec)
	if err != nil {
		t.Fatal(err)
	}
	k2, err := CanonicalKey(compact)
	if err != nil {
		t.Fatal(err)
	}
	k3, err := CanonicalKey([]byte(`{"scenario": ` + testScenario + `}`))
	if err != nil {
		t.Fatal(err)
	}
	if k1 != k2 || k1 != k3 {
		t.Fatal("equivalent bodies produced distinct canonical keys")
	}
	// A fault spec joins the address; a distinct scenario moves it.
	kf, err := CanonicalKey([]byte(`{"scenario": ` + testScenario + `, "fault": "seed=3,loss=0.5@10-20"}`))
	if err != nil {
		t.Fatal(err)
	}
	if kf == k1 {
		t.Fatal("fault spec did not change the canonical key")
	}
	if _, err := CanonicalKey([]byte(`{"name": 42}`)); err == nil {
		t.Fatal("CanonicalKey accepted an invalid scenario")
	}
}

// fluidScenario is a counted population large enough to cross a small
// fluid threshold without materializing anything.
const fluidScenario = `{
  "name": "big-pop",
  "gateways": [{"name": "A", "mu": 1.0, "latency": 0.1}],
  "connections": [
    {"path": ["A"], "count": 6, "law": {"kind": "additive", "eta": 0.01, "bss": 0.3}}
  ]
}`

// TestServeBackendSelection pins the backend routing matrix: auto
// stays discrete below the threshold, switches to fluid at it, falls
// back to discrete for faulted requests; a forced fluid backend
// rejects fault envelopes; and the backend label keeps the two
// report shapes under distinct cache keys.
func TestServeBackendSelection(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 2, FluidThreshold: 4})

	// Small population: auto resolves discrete, report stays v1-plain.
	resp, body := post(t, ts.URL+"/run", testScenario)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("discrete run: %d %s", resp.StatusCode, body)
	}
	if h := resp.Header.Get("X-FFCD-Backend"); h != BackendDiscrete {
		t.Fatalf("small population backend header = %q, want discrete", h)
	}
	var rep obs.RunReport
	if err := json.Unmarshal(body, &rep); err != nil {
		t.Fatal(err)
	}
	if rep.Backend != "" {
		t.Fatalf("discrete report backend = %q, want empty", rep.Backend)
	}

	// Counted population past the threshold: auto resolves fluid.
	resp, body = post(t, ts.URL+"/run", fluidScenario)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("fluid run: %d %s", resp.StatusCode, body)
	}
	if h := resp.Header.Get("X-FFCD-Backend"); h != BackendFluid {
		t.Fatalf("large population backend header = %q, want fluid", h)
	}
	if err := json.Unmarshal(body, &rep); err != nil {
		t.Fatal(err)
	}
	if rep.Backend != BackendFluid || rep.Population != 6 || len(rep.ClassWeights) != 1 {
		t.Fatalf("fluid report: backend=%q population=%d classes=%d",
			rep.Backend, rep.Population, len(rep.ClassWeights))
	}
	if !rep.Converged {
		t.Fatal("fluid run did not converge")
	}

	// The same large population with a fault spec: auto falls back to
	// the discrete backend (fault injection is per-connection).
	faulted := fmt.Sprintf(`{"scenario": %s, "fault": "seed=3,loss=0.5@10-40"}`, fluidScenario)
	resp, body = post(t, ts.URL+"/run", faulted)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("faulted run: %d %s", resp.StatusCode, body)
	}
	if h := resp.Header.Get("X-FFCD-Backend"); h != BackendDiscrete {
		t.Fatalf("faulted backend header = %q, want discrete", h)
	}

	// A forced-fluid server rejects fault envelopes outright.
	_, tsFluid := newTestServer(t, Config{Workers: 2, Backend: BackendFluid})
	resp, body = post(t, tsFluid.URL+"/run", faulted)
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("forced fluid + fault: %d %s, want 400", resp.StatusCode, body)
	}
	resp, _ = post(t, tsFluid.URL+"/run", testScenario)
	if h := resp.Header.Get("X-FFCD-Backend"); h != BackendFluid {
		t.Fatalf("forced fluid backend header = %q", h)
	}

	// Backend participates in the content address: the same canonical
	// spec under the two backends must key different cache entries.
	d, err := parseRunRequest([]byte(fluidScenario), nil, BackendDiscrete, 0)
	if err != nil {
		t.Fatal(err)
	}
	f, err := parseRunRequest([]byte(fluidScenario), nil, BackendFluid, 0)
	if err != nil {
		t.Fatal(err)
	}
	if d.key == f.key {
		t.Fatal("discrete and fluid requests share a cache key")
	}
}

// Package serve is the HTTP layer of cmd/ffcd, the scenario-serving
// daemon: it accepts declarative scenario JSON (the internal/scenario
// format, optionally wrapped in an envelope carrying a fault spec) and
// serves versioned run reports from a content-addressed result cache
// (internal/runcache), solving each distinct scenario at most once.
//
// Endpoints:
//
//	POST /run     one scenario → one run report (X-FFCD-Cache: hit|miss)
//	POST /batch   {"runs": [...]} → one report or error per item
//	GET  /healthz liveness and queue occupancy
//	GET  /metrics expvar-style JSON: serve, cache, and pool counters;
//	              Prometheus text format under Accept: text/plain
//	              (or ?format=prometheus)
//
// Every request is observable: per-endpoint × per-outcome latency
// histograms (hit/miss/400/405/413/422/429/503) and a sampled
// queue-depth gauge are always on, and when Config.Tracer is set each
// request additionally carries a span — phases parse → canonicalize →
// cache → queue → solve → render — whose trace ID is returned in the
// X-FFCD-Trace-ID header and whose completed event goes to the
// tracer's sink. With tracing disabled (nil Tracer) the
// instrumentation adds zero allocations per request on the cache-hit
// path.
//
// Concurrency is bounded: at most Workers solves run at once (each
// rides the internal/parallel pool, so pool telemetry and
// panic-to-error conversion apply), at most Queue more may wait, and
// beyond that /run answers 429 — backpressure instead of collapse.
// Cache hits and single-flight waiters bypass admission entirely: a
// full queue never refuses work that costs no solve. Shutdown is
// graceful: ListenAndServe stops accepting on context cancellation
// and drains in-flight runs before returning.
//
// docs/SERVING.md documents the endpoints, cache semantics, and
// capacity knobs.
package serve

import (
	"context"
	"encoding/json"
	"errors"
	"expvar"
	"fmt"
	"io"
	"net"
	"net/http"
	"sort"
	"strings"
	"sync/atomic"
	"time"

	"github.com/nettheory/feedbackflow/internal/fault"
	"github.com/nettheory/feedbackflow/internal/fluid"
	"github.com/nettheory/feedbackflow/internal/obs"
	"github.com/nettheory/feedbackflow/internal/parallel"
	"github.com/nettheory/feedbackflow/internal/runcache"
)

// BatchReportSchema identifies the /batch response JSON schema.
const BatchReportSchema = "feedbackflow/batch-report/v1"

// Config sizes the daemon.
type Config struct {
	// Workers bounds concurrent solves (0 = one per CPU, the
	// parallel.Workers convention).
	Workers int
	// Queue is how many solves may wait beyond the workers before /run
	// answers 429 (default 64).
	Queue int
	// CacheEntries bounds the result cache by entry count (default
	// 1024; <= 0 with CacheBytes also <= 0 still defaults both).
	CacheEntries int
	// CacheBytes bounds the result cache by total report bytes
	// (default 256 MiB).
	CacheBytes int64
	// MaxBodyBytes bounds a request body (default 8 MiB).
	MaxBodyBytes int64
	// MaxBatch bounds the number of runs in one /batch request
	// (default 256).
	MaxBatch int
	// Tracer, when non-nil, records one span per request (phases,
	// monotonic durations, outcome) and returns its trace ID in the
	// X-FFCD-Trace-ID header. Nil disables tracing at zero cost.
	Tracer *obs.Tracer
	// Backend selects the solver: BackendDiscrete, BackendFluid, or
	// BackendAuto (the default), which solves populations of at least
	// FluidThreshold connections with the fluid backend and everything
	// else — including every faulted request — with the discrete one.
	Backend string
	// FluidThreshold is the population at which BackendAuto switches to
	// the fluid solver (default fluid.DefaultThreshold).
	FluidThreshold int64
}

func (c Config) withDefaults() Config {
	c.Workers = parallel.Workers(c.Workers)
	if c.Queue <= 0 {
		c.Queue = 64
	}
	if c.CacheEntries <= 0 && c.CacheBytes <= 0 {
		c.CacheEntries = 1024
		c.CacheBytes = 256 << 20
	}
	if c.MaxBodyBytes <= 0 {
		c.MaxBodyBytes = 8 << 20
	}
	if c.MaxBatch <= 0 {
		c.MaxBatch = 256
	}
	if c.Backend == "" {
		c.Backend = BackendAuto
	}
	if c.FluidThreshold <= 0 {
		c.FluidThreshold = fluid.DefaultThreshold
	}
	return c
}

// errBusy is the admission-rejection sentinel mapped to 429.
var errBusy = errors.New("serve: all workers busy and queue full")

// Request outcome labels: the cache verdict for successful runs, the
// HTTP status for everything else. They key the per-endpoint latency
// histogram families (serve.latency.<endpoint>.<outcome>) and label
// the spans, and they are constants so the hot path never builds a
// string.
const (
	outHit  = "hit"
	outMiss = "miss"
	out400  = "400"
	out405  = "405"
	out413  = "413"
	out422  = "422"
	out429  = "429"
	out503  = "503"
)

// outcomes is every label above, in histogram-registration order.
var outcomes = []string{outHit, outMiss, out400, out405, out413, out422, out429, out503}

// latencyFamily pre-creates one latency histogram per outcome for an
// endpoint, so recording a latency is a constant-key map read plus an
// allocation-free Observe. The log-bucket layout spans 1µs–100s at
// five buckets per decade, so quantile estimates resolve to one
// bucket ratio, 10^(1/5) ≈ 1.58×.
func latencyFamily(reg *obs.Registry, endpoint string) map[string]*obs.Histogram {
	m := make(map[string]*obs.Histogram, len(outcomes))
	for _, o := range outcomes {
		m[o] = reg.Histogram("serve.latency."+endpoint+"."+o, 1e-6, 100, 5)
	}
	return m
}

// Server is the daemon: cache, admission control, and handlers.
type Server struct {
	cfg   Config
	cache *runcache.Cache
	mux   *http.ServeMux
	start time.Time

	// draining flips once graceful shutdown begins; from then on
	// /healthz answers 503 so pool-level health checks (an ffcgw
	// routing to this replica) stop sending new work while the drain
	// window runs out. In-flight and still-arriving /run traffic is
	// unaffected — the drain itself is the HTTP server's business.
	draining atomic.Bool

	// Admission: every solver holds a queue ticket for its whole
	// wait+run; at most Workers of them additionally hold a run slot.
	// Tickets are therefore bounded by Workers+Queue, and acquiring
	// one is non-blocking — failure is the 429 backpressure signal.
	queue chan struct{}
	slots chan struct{}

	reg       *obs.Registry
	requests  *obs.Counter
	hits      *obs.Counter
	misses    *obs.Counter
	rejected  *obs.Counter
	badReqs   *obs.Counter
	runErrors *obs.Counter
	batchRuns *obs.Counter
	inflightG *obs.Gauge
	inflight  func() int64

	// Request-level observability: optional spans (nil tracer = off),
	// per-endpoint × per-outcome latency histograms, and a queue-depth
	// gauge sampled at every request arrival.
	tracer      *obs.Tracer
	latRun      map[string]*obs.Histogram
	latBatch    map[string]*obs.Histogram
	queueDepthG *obs.Gauge

	// testHookSolve, when non-nil, runs inside every solve while its
	// run slot is held — the seam the backpressure and drain tests use
	// to hold the server at a known occupancy.
	testHookSolve func()
}

// New returns a ready-to-serve daemon.
func New(cfg Config) *Server {
	cfg = cfg.withDefaults()
	reg := obs.NewRegistry()
	s := &Server{
		cfg:       cfg,
		cache:     runcache.New(cfg.CacheEntries, cfg.CacheBytes),
		mux:       http.NewServeMux(),
		start:     time.Now(),
		queue:     make(chan struct{}, cfg.Workers+cfg.Queue),
		slots:     make(chan struct{}, cfg.Workers),
		reg:       reg,
		requests:  reg.Counter("serve.requests"),
		hits:      reg.Counter("serve.cache_hits"),
		misses:    reg.Counter("serve.cache_misses"),
		rejected:  reg.Counter("serve.rejected"),
		badReqs:   reg.Counter("serve.bad_requests"),
		runErrors: reg.Counter("serve.run_errors"),
		batchRuns: reg.Counter("serve.batch_runs"),
		inflightG: reg.Gauge("serve.queue_occupancy"),

		tracer:      cfg.Tracer,
		latRun:      latencyFamily(reg, "run"),
		latBatch:    latencyFamily(reg, "batch"),
		queueDepthG: reg.Gauge("serve.queue_depth"),
	}
	s.inflight = func() int64 { return int64(len(s.queue)) }
	s.mux.HandleFunc("/run", s.handleRun)
	s.mux.HandleFunc("/batch", s.handleBatch)
	s.mux.HandleFunc("/healthz", s.handleHealthz)
	s.mux.HandleFunc("/metrics", s.handleMetrics)
	return s
}

// Handler returns the daemon's HTTP handler (also usable under
// httptest).
func (s *Server) Handler() http.Handler { return s.mux }

// Snapshot returns the server's own telemetry (the /metrics endpoint
// also carries the cache's and the worker pool's).
func (s *Server) Snapshot() map[string]interface{} { return s.reg.Snapshot() }

// CacheSnapshot returns the result cache telemetry.
func (s *Server) CacheSnapshot() map[string]interface{} { return s.cache.Snapshot() }

// ListenAndServe serves on addr until ctx is cancelled, then drains
// in-flight requests for up to drain before returning. onReady, if
// non-nil, receives the bound address once the listener is up (addr
// may end in ":0").
func (s *Server) ListenAndServe(ctx context.Context, addr string, drain time.Duration, onReady func(net.Addr)) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	srv := &http.Server{Handler: s.mux}
	errc := make(chan error, 1)
	go func() { errc <- srv.Serve(ln) }()
	if onReady != nil {
		onReady(ln.Addr())
	}
	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
	}
	// Flip health before the listener closes: a probe racing the
	// shutdown sees "draining" instead of "ok", so a gateway ejects
	// this replica rather than routing to a socket about to vanish.
	s.BeginDrain()
	shutdownCtx, cancel := context.WithTimeout(context.Background(), drain)
	defer cancel()
	if err := srv.Shutdown(shutdownCtx); err != nil {
		return fmt.Errorf("serve: drain: %w", err)
	}
	return nil
}

// solve resolves one parsed request through the cache: a hit or a
// coalesced wait is free; a miss passes admission control and runs the
// scenario on the worker pool. sp, when non-nil, gains the queue /
// solve / render phases on the goroutine that runs the solve (a
// coalesced waiter's span simply stays in its cache phase while it
// waits).
func (s *Server) solve(ctx context.Context, req *runRequest, sp *obs.Span) (body []byte, cached bool, err error) {
	sp.Phase("cache")
	return s.cache.Do(ctx, req.key, func() ([]byte, error) {
		sp.Phase("queue")
		select {
		case s.queue <- struct{}{}:
		default:
			return nil, errBusy
		}
		defer func() { <-s.queue }()
		s.inflightG.Set(float64(len(s.queue)))

		select {
		case s.slots <- struct{}{}:
		case <-ctx.Done():
			return nil, ctx.Err()
		}
		defer func() { <-s.slots }()

		if s.testHookSolve != nil {
			s.testHookSolve()
		}
		// The single run rides the pool for its telemetry and
		// panic-to-error conversion; concurrency across requests is
		// already bounded by the slots.
		out, err := parallel.Map(ctx, 1, 1, func(int) ([]byte, error) {
			return renderRun(req, sp)
		})
		if err != nil {
			return nil, err
		}
		return out[0], nil
	})
}

// renderRun executes the request and renders the versioned run report
// exactly once; these bytes are what the cache serves verbatim
// thereafter, which is what makes hits byte-identical to the miss.
func renderRun(req *runRequest, sp *obs.Span) ([]byte, error) {
	sp.Phase("solve")
	opts := req.spec.RunOptions()
	if req.backend == BackendFluid {
		// parseRunRequest already rejected fault+fluid, so this is
		// always a plain run.
		fsys, fr0, err := fluid.FromSpec(req.spec)
		if err != nil {
			return nil, err
		}
		res, err := fsys.Run(fr0, opts)
		if err != nil {
			return nil, err
		}
		sp.Phase("render")
		rep, err := fsys.Report(res, req.spec.Name)
		if err != nil {
			return nil, err
		}
		return marshalReport(rep)
	}
	sys, r0, err := req.spec.Build()
	if err != nil {
		return nil, err
	}
	if !req.fault.Enabled() {
		res, err := sys.Run(r0, opts)
		if err != nil {
			return nil, err
		}
		sp.Phase("render")
		rep, err := sys.Report(res, req.spec.Name)
		if err != nil {
			return nil, err
		}
		return marshalReport(rep)
	}
	res, err := fault.RunPerturbed(sys, r0, req.fault, opts)
	if err != nil {
		return nil, err
	}
	sp.Phase("render")
	rep, err := sys.Report(res.Perturbed, req.spec.Name)
	if err != nil {
		return nil, err
	}
	res.Attach(rep)
	return marshalReport(rep)
}

func marshalReport(rep interface{}) ([]byte, error) {
	b, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(b, '\n'), nil
}

func (s *Server) handleRun(w http.ResponseWriter, r *http.Request) {
	start := time.Now()
	s.queueDepthG.Set(float64(len(s.queue)))
	sp := s.startSpan(w, r, "run")
	outcome := s.serveRun(w, r, sp)
	sp.Outcome(outcome)
	sp.End()
	// The latency histograms are always on; with tracing disabled the
	// whole sequence above is branch-only and allocation-free (see
	// TestHitPathInstrumentationAddsZeroAllocs).
	if h := s.latRun[outcome]; h != nil {
		h.Observe(time.Since(start).Seconds())
	}
}

// startSpan begins the request span, adopting an upstream trace ID
// when the request carries one — an ffcgw forwards its own
// X-FFCD-Trace-ID, so gateway and replica spans share an identity and
// the JSONL streams on both sides join on it. The header is echoed in
// the response whenever an identity exists: always with tracing on,
// and on propagated requests even with tracing off (costing nothing on
// the untraced, non-propagated hot path).
func (s *Server) startSpan(w http.ResponseWriter, r *http.Request, name string) *obs.Span {
	inbound, _ := obs.ParseTraceID(r.Header.Get("X-FFCD-Trace-ID"))
	sp := s.tracer.StartWith(name, inbound)
	switch {
	case sp != nil:
		w.Header().Set("X-FFCD-Trace-ID", sp.ID().String())
	case inbound != 0:
		w.Header().Set("X-FFCD-Trace-ID", inbound.String())
	}
	return sp
}

// serveRun is the /run body; it returns the request's outcome label.
func (s *Server) serveRun(w http.ResponseWriter, r *http.Request, sp *obs.Span) string {
	s.requests.Inc()
	if r.Method != http.MethodPost {
		s.error(w, http.StatusMethodNotAllowed, fmt.Errorf("POST a scenario document to /run"))
		return out405
	}
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes))
	if err != nil {
		s.badReqs.Inc()
		s.error(w, http.StatusRequestEntityTooLarge, fmt.Errorf("request body: %v", err))
		return out413
	}
	req, err := parseRunRequest(body, sp, s.cfg.Backend, s.cfg.FluidThreshold)
	if err != nil {
		s.badReqs.Inc()
		s.error(w, http.StatusBadRequest, err)
		return out400
	}
	val, cached, err := s.solve(r.Context(), req, sp)
	if err != nil {
		return s.writeRunError(w, err)
	}
	if cached {
		s.hits.Inc()
	} else {
		s.misses.Inc()
	}
	w.Header().Set("Content-Type", "application/json")
	w.Header().Set("X-FFCD-Cache", cacheHeader(cached))
	w.Header().Set("X-FFCD-Backend", req.backend)
	w.Write(val)
	if cached {
		return outHit
	}
	return outMiss
}

// batchEnvelope is the /batch request: a list of run requests, each in
// either /run form (bare scenario or scenario+fault envelope).
type batchEnvelope struct {
	Runs []json.RawMessage `json:"runs"`
}

// batchItem is one /batch result. Exactly one of Report and Error is
// set.
type batchItem struct {
	Cache  string          `json:"cache,omitempty"` // "hit" or "miss"
	Report json.RawMessage `json:"report,omitempty"`
	Error  string          `json:"error,omitempty"`
}

func (s *Server) handleBatch(w http.ResponseWriter, r *http.Request) {
	start := time.Now()
	s.queueDepthG.Set(float64(len(s.queue)))
	sp := s.startSpan(w, r, "batch")
	outcome := s.serveBatch(w, r, sp)
	sp.Outcome(outcome)
	sp.End()
	// Whole-request failures (405/413/400) land in the batch latency
	// family too; when items ran, serveBatch returns "" and each item
	// has already recorded its own outcome and latency.
	if h := s.latBatch[outcome]; h != nil {
		h.Observe(time.Since(start).Seconds())
	}
}

// serveBatch is the /batch body; it returns the whole-request outcome
// label for failures before item fan-out, or "" when items ran (each
// item records its own outcome into the batch latency family).
func (s *Server) serveBatch(w http.ResponseWriter, r *http.Request, sp *obs.Span) string {
	s.requests.Inc()
	if r.Method != http.MethodPost {
		s.error(w, http.StatusMethodNotAllowed, fmt.Errorf(`POST {"runs": [...]} to /batch`))
		return out405
	}
	sp.Phase("parse")
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes))
	if err != nil {
		s.badReqs.Inc()
		s.error(w, http.StatusRequestEntityTooLarge, fmt.Errorf("request body: %v", err))
		return out413
	}
	var env batchEnvelope
	if err := json.Unmarshal(body, &env); err != nil {
		s.badReqs.Inc()
		s.error(w, http.StatusBadRequest, fmt.Errorf("batch: %v", err))
		return out400
	}
	if len(env.Runs) == 0 {
		s.badReqs.Inc()
		s.error(w, http.StatusBadRequest, fmt.Errorf(`batch: no "runs"`))
		return out400
	}
	if len(env.Runs) > s.cfg.MaxBatch {
		s.badReqs.Inc()
		s.error(w, http.StatusBadRequest, fmt.Errorf("batch: %d runs exceeds the limit of %d", len(env.Runs), s.cfg.MaxBatch))
		return out400
	}

	// Items fan out on the pool (bounded by the server's workers) and
	// record their own outcomes — per-item cache status in the response
	// and per-item latency in the serve.latency.batch.* family — so one
	// bad scenario fails its slot of the response rather than the whole
	// batch.
	sp.Phase("items")
	items := make([]batchItem, len(env.Runs))
	_ = parallel.ForEach(r.Context(), len(env.Runs), s.cfg.Workers, func(i int) error {
		itemStart := time.Now()
		outcome := s.serveBatchItem(r.Context(), env.Runs[i], &items[i])
		if h := s.latBatch[outcome]; h != nil {
			h.Observe(time.Since(itemStart).Seconds())
		}
		return nil
	})

	w.Header().Set("Content-Type", "application/json")
	resp := struct {
		Schema  string      `json:"schema"`
		Results []batchItem `json:"results"`
	}{BatchReportSchema, items}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(resp)
	return ""
}

// serveBatchItem runs one /batch item into *item and returns its
// outcome label.
func (s *Server) serveBatchItem(ctx context.Context, raw json.RawMessage, item *batchItem) string {
	s.batchRuns.Inc()
	req, err := parseRunRequest(raw, nil, s.cfg.Backend, s.cfg.FluidThreshold)
	if err != nil {
		s.badReqs.Inc()
		*item = batchItem{Error: err.Error()}
		return out400
	}
	val, cached, err := s.solve(ctx, req, nil)
	if err != nil {
		*item = batchItem{Error: err.Error()}
		switch {
		case errors.Is(err, errBusy):
			s.rejected.Inc()
			return out429
		case errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded):
			s.runErrors.Inc()
			return out503
		default:
			s.runErrors.Inc()
			return out422
		}
	}
	if cached {
		s.hits.Inc()
	} else {
		s.misses.Inc()
	}
	*item = batchItem{Cache: cacheHeader(cached), Report: val}
	if cached {
		return outHit
	}
	return outMiss
}

// BeginDrain marks the server as draining: /healthz answers 503 from
// here on, while every other endpoint keeps serving until the HTTP
// server's own drain completes. ListenAndServe calls it on context
// cancellation; it is idempotent and safe to call directly (tests, or
// an embedding daemon with its own shutdown sequence).
func (s *Server) BeginDrain() { s.draining.Store(true) }

// Draining reports whether BeginDrain has been called.
func (s *Server) Draining() bool { return s.draining.Load() }

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	status, code := "ok", http.StatusOK
	if s.draining.Load() {
		// 503 + Retry-After: the conventional "lame duck" answer, so
		// generic health checkers and ffcgw probes alike stop routing
		// here without special-casing the body.
		status, code = "draining", http.StatusServiceUnavailable
		w.Header().Set("Retry-After", "1")
		w.WriteHeader(code)
	}
	fmt.Fprintf(w, "{\"status\":%q,\"queue_occupancy\":%d,\"queue_capacity\":%d,\"uptime_ns\":%d}\n",
		status, s.inflight(), cap(s.queue), time.Since(s.start).Nanoseconds())
}

// handleMetrics serves the server's registries in one of two forms,
// chosen by content negotiation:
//
//   - JSON (the default, expvar-style): the process's published
//     expvars plus this server's own registries, without mutating
//     global expvar state (so tests can run many servers in one
//     process). The "memstats" expvar is excluded — reading it
//     mutates it, which would make two back-to-back scrapes of an
//     idle daemon differ byte-for-byte.
//   - Prometheus text exposition 0.0.4, when the request carries
//     ?format=prometheus or an Accept header naming text/plain or
//     OpenMetrics.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	if wantsPrometheus(r) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		obs.WritePrometheus(w, s.reg.Snapshot(), s.cache.Snapshot(), parallel.Snapshot())
		return
	}
	w.Header().Set("Content-Type", "application/json")
	fmt.Fprintf(w, "{\n")
	first := true
	emit := func(name string, v interface{}) {
		if !first {
			fmt.Fprintf(w, ",\n")
		}
		first = false
		b, err := json.Marshal(v)
		if err != nil {
			b = []byte(`"unmarshalable"`)
		}
		fmt.Fprintf(w, "%q: %s", name, b)
	}
	emit("feedbackflow.serve", s.reg.Snapshot())
	emit("feedbackflow.runcache", s.cache.Snapshot())
	emit("feedbackflow.parallel", parallel.Snapshot())
	var names []string
	global := map[string]string{}
	expvar.Do(func(kv expvar.KeyValue) {
		if kv.Key == "memstats" {
			return
		}
		names = append(names, kv.Key)
		global[kv.Key] = kv.Value.String()
	})
	sort.Strings(names)
	for _, name := range names {
		if !first {
			fmt.Fprintf(w, ",\n")
		}
		first = false
		fmt.Fprintf(w, "%q: %s", name, global[name])
	}
	fmt.Fprintf(w, "\n}\n")
}

// wantsPrometheus reports whether the scraper asked for the text
// exposition format: an explicit ?format=prometheus override, or an
// Accept header naming text/plain (the classic Prometheus scrape
// Accept) or OpenMetrics.
func wantsPrometheus(r *http.Request) bool {
	switch r.URL.Query().Get("format") {
	case "prometheus":
		return true
	case "json":
		return false
	}
	accept := r.Header.Get("Accept")
	return strings.Contains(accept, "text/plain") ||
		strings.Contains(accept, "openmetrics")
}

// writeRunError maps a solve failure to its HTTP status — 429 for
// backpressure, 422 for a run the model rejects (e.g. a fault run
// whose baseline never converges), 499-style client cancellation is
// reported as 503 since the client is gone anyway — and returns the
// matching outcome label.
func (s *Server) writeRunError(w http.ResponseWriter, err error) string {
	switch {
	case errors.Is(err, errBusy):
		s.rejected.Inc()
		w.Header().Set("Retry-After", "1")
		s.error(w, http.StatusTooManyRequests, err)
		return out429
	case errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded):
		s.runErrors.Inc()
		s.error(w, http.StatusServiceUnavailable, err)
		return out503
	default:
		s.runErrors.Inc()
		s.error(w, http.StatusUnprocessableEntity, err)
		return out422
	}
}

func (s *Server) error(w http.ResponseWriter, status int, err error) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	resp := struct {
		Error string `json:"error"`
	}{err.Error()}
	json.NewEncoder(w).Encode(resp)
}

func cacheHeader(cached bool) string {
	if cached {
		return "hit"
	}
	return "miss"
}

package serve

import (
	"bytes"
	"io"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"testing"
	"time"

	"github.com/nettheory/feedbackflow/internal/obs"
)

// traceSink retains deep copies of emitted span events (the EmitSpan
// contract says the event is borrowed).
type traceSink struct {
	events []obs.SpanEvent
}

func (c *traceSink) EmitSpan(ev *obs.SpanEvent) {
	cp := *ev
	cp.Phases = append([]obs.PhaseEvent(nil), ev.Phases...)
	c.events = append(c.events, cp)
}

func phaseNames(ev obs.SpanEvent) []string {
	names := make([]string, len(ev.Phases))
	for i, p := range ev.Phases {
		names[i] = p.Name
	}
	return names
}

// TestServeTracing drives /run with tracing enabled: every response
// carries an X-FFCD-Trace-ID matching the emitted span, a miss walks
// the full parse → canonicalize → cache → queue → solve → render
// phase sequence, and a hit stops at the cache.
func TestServeTracing(t *testing.T) {
	sink := &traceSink{}
	s := New(Config{Workers: 2, Tracer: obs.NewTracer(sink)})
	ts := newHTTPServer(t, s)

	resp1, body1 := post(t, ts+"/run", testScenario)
	if resp1.StatusCode != http.StatusOK {
		t.Fatalf("miss POST: %d %s", resp1.StatusCode, body1)
	}
	resp2, _ := post(t, ts+"/run", testScenario)

	id1 := resp1.Header.Get("X-FFCD-Trace-ID")
	id2 := resp2.Header.Get("X-FFCD-Trace-ID")
	for _, id := range []string{id1, id2} {
		if len(id) != 16 {
			t.Fatalf("trace id %q, want 16 hex chars", id)
		}
		if _, err := strconv.ParseUint(id, 16, 64); err != nil {
			t.Fatalf("trace id %q is not hex: %v", id, err)
		}
	}
	if id1 == id2 {
		t.Fatal("two requests share a trace ID")
	}

	if len(sink.events) != 2 {
		t.Fatalf("%d span events, want 2", len(sink.events))
	}
	miss, hit := sink.events[0], sink.events[1]
	if miss.Trace != id1 || hit.Trace != id2 {
		t.Errorf("span trace IDs %q/%q do not match headers %q/%q",
			miss.Trace, hit.Trace, id1, id2)
	}
	if miss.Span != "run" || miss.Outcome != "miss" {
		t.Errorf("miss span = %q outcome = %q", miss.Span, miss.Outcome)
	}
	if hit.Outcome != "hit" {
		t.Errorf("hit span outcome = %q", hit.Outcome)
	}

	wantMiss := []string{"parse", "canonicalize", "cache", "queue", "solve", "render"}
	if got := phaseNames(miss); strings.Join(got, ",") != strings.Join(wantMiss, ",") {
		t.Errorf("miss phases = %v, want %v", got, wantMiss)
	}
	wantHit := []string{"parse", "canonicalize", "cache"}
	if got := phaseNames(hit); strings.Join(got, ",") != strings.Join(wantHit, ",") {
		t.Errorf("hit phases = %v, want %v", got, wantHit)
	}

	for _, ev := range sink.events {
		if ev.DurNS <= 0 {
			t.Errorf("span %q has non-positive duration %d", ev.Outcome, ev.DurNS)
		}
		sum := int64(0)
		for _, p := range ev.Phases {
			if p.DurNS < 0 {
				t.Errorf("phase %q duration %d < 0", p.Name, p.DurNS)
			}
			sum += p.DurNS
		}
		if sum > ev.DurNS {
			t.Errorf("phase durations sum to %d > span duration %d", sum, ev.DurNS)
		}
	}

	// A bad request still carries a trace ID and records its outcome.
	resp3, _ := post(t, ts+"/run", "{not json")
	if resp3.Header.Get("X-FFCD-Trace-ID") == "" {
		t.Error("400 response lacks a trace ID")
	}
	if got := sink.events[len(sink.events)-1].Outcome; got != "400" {
		t.Errorf("bad-request span outcome = %q, want 400", got)
	}
}

// newHTTPTestServer serves an already-built Server (e.g. one with an
// injected tracer) over loopback HTTP.
func newHTTPTestServer(s *Server) *httptest.Server {
	return httptest.NewServer(s.Handler())
}

func newHTTPServer(t *testing.T, s *Server) string {
	t.Helper()
	ts := newHTTPTestServer(s)
	t.Cleanup(ts.Close)
	return ts.URL
}

// TestServeMetricsPrometheus: /metrics negotiates the Prometheus text
// exposition format and includes the serve, cache, and pool families.
func TestServeMetricsPrometheus(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 2})
	_, _ = post(t, ts.URL+"/run", testScenario)
	_, _ = post(t, ts.URL+"/run", testScenario) // hit

	get := func(url, accept string) (*http.Response, string) {
		t.Helper()
		req, err := http.NewRequest(http.MethodGet, url, nil)
		if err != nil {
			t.Fatal(err)
		}
		if accept != "" {
			req.Header.Set("Accept", accept)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		body, err := io.ReadAll(resp.Body)
		resp.Body.Close()
		if err != nil {
			t.Fatal(err)
		}
		return resp, string(body)
	}

	resp, text := get(ts.URL+"/metrics", "text/plain")
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain; version=0.0.4") {
		t.Errorf("content type %q", ct)
	}
	for _, want := range []string{
		"# TYPE serve_requests counter",
		"serve_cache_hits 1",
		"serve_cache_misses 1",
		"# TYPE serve_latency_run_hit histogram",
		`serve_latency_run_hit_bucket{le="+Inf"} 1`,
		"serve_latency_run_hit_count 1",
		"# TYPE runcache_entries gauge",
		"# TYPE parallel_runs counter",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("prometheus exposition lacks %q", want)
		}
	}
	// Every non-comment line must be `name[{labels}] value` with a
	// parseable value.
	for _, line := range strings.Split(text, "\n") {
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		i := strings.LastIndexByte(line, ' ')
		if i < 0 {
			t.Fatalf("malformed exposition line %q", line)
		}
		if _, err := strconv.ParseFloat(line[i+1:], 64); err != nil {
			t.Fatalf("unparseable value in line %q: %v", line, err)
		}
	}

	// ?format=prometheus works without an Accept header; ?format=json
	// overrides an Accept that would otherwise pick text.
	if _, text2 := get(ts.URL+"/metrics?format=prometheus", ""); !strings.Contains(text2, "# TYPE serve_requests counter") {
		t.Error("?format=prometheus did not select the exposition format")
	}
	if _, j := get(ts.URL+"/metrics?format=json", "text/plain"); !strings.HasPrefix(strings.TrimSpace(j), "{") {
		t.Error("?format=json did not select JSON")
	}
}

// TestServeMetricsJSONDeterministic is the idle-scrape contract: two
// back-to-back JSON scrapes of an idle daemon are byte-identical (no
// self-mutating values, deterministic key order).
func TestServeMetricsJSONDeterministic(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 2})
	_, _ = post(t, ts.URL+"/run", testScenario)

	scrape := func() []byte {
		t.Helper()
		resp, err := http.Get(ts.URL + "/metrics")
		if err != nil {
			t.Fatal(err)
		}
		body, err := io.ReadAll(resp.Body)
		resp.Body.Close()
		if err != nil {
			t.Fatal(err)
		}
		return body
	}
	a := scrape()
	b := scrape()
	if !bytes.Equal(a, b) {
		t.Fatalf("two idle scrapes differ:\n--- first\n%s\n--- second\n%s", a, b)
	}
	if bytes.Contains(a, []byte(`"memstats"`)) {
		t.Error("/metrics JSON includes the self-mutating memstats expvar")
	}

	// The Prometheus rendering is deterministic too.
	scrapeProm := func() []byte {
		t.Helper()
		resp, err := http.Get(ts.URL + "/metrics?format=prometheus")
		if err != nil {
			t.Fatal(err)
		}
		body, err := io.ReadAll(resp.Body)
		resp.Body.Close()
		if err != nil {
			t.Fatal(err)
		}
		return body
	}
	if !bytes.Equal(scrapeProm(), scrapeProm()) {
		t.Fatal("two idle Prometheus scrapes differ")
	}
}

// TestHitPathInstrumentationAddsZeroAllocs pins the acceptance
// criterion: with tracing disabled, the per-request instrumentation
// sequence handleRun executes around serveRun — queue-depth sample,
// span start/outcome/end, latency observation — allocates nothing.
func TestHitPathInstrumentationAddsZeroAllocs(t *testing.T) {
	s := New(Config{Workers: 2})
	allocs := testing.AllocsPerRun(1000, func() {
		start := time.Now()
		s.queueDepthG.Set(float64(len(s.queue)))
		sp := s.tracer.Start("run")
		sp.Phase("parse")
		sp.Phase("canonicalize")
		sp.Phase("cache")
		sp.Outcome(outHit)
		sp.End()
		if h := s.latRun[outHit]; h != nil {
			h.Observe(time.Since(start).Seconds())
		}
	})
	if allocs != 0 {
		t.Fatalf("disabled-tracing instrumentation allocates %v per request, want 0", allocs)
	}
}

// BenchmarkServeRunCacheHit measures the full HTTP round trip of a
// cache hit (instrumentation on, tracing off) — the serving path the
// zero-alloc criterion protects.
func BenchmarkServeRunCacheHit(b *testing.B) {
	s := New(Config{Workers: 2})
	ts := newHTTPTestServer(s)
	defer ts.Close()

	warm, err := http.Post(ts.URL+"/run", "application/json", strings.NewReader(testScenario))
	if err != nil {
		b.Fatal(err)
	}
	io.Copy(io.Discard, warm.Body)
	warm.Body.Close()

	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		resp, err := http.Post(ts.URL+"/run", "application/json", strings.NewReader(testScenario))
		if err != nil {
			b.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.Header.Get("X-FFCD-Cache") != "hit" {
			b.Fatal("benchmark request missed the cache")
		}
	}
}

package serve

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"

	"github.com/nettheory/feedbackflow/internal/fault"
	"github.com/nettheory/feedbackflow/internal/obs"
	"github.com/nettheory/feedbackflow/internal/runcache"
	"github.com/nettheory/feedbackflow/internal/scenario"
)

// runRequest is one fully parsed, validated, content-addressed run:
// the scenario, the optional fault spec, and the cache key derived
// from their canonical forms.
type runRequest struct {
	spec  *scenario.Spec
	fault fault.Config
	key   runcache.Key
}

// envelope is the explicit request form: a scenario document plus an
// optional compact fault spec (docs/ROBUSTNESS.md grammar).
type envelope struct {
	Scenario json.RawMessage `json:"scenario"`
	Fault    string          `json:"fault"`
}

// CanonicalKey parses and validates body exactly as POST /run does —
// bare scenario or {"scenario","fault"} envelope, strict JSON, a
// buildable spec — and returns the content address the daemon would
// cache the result under, without solving anything. It is how an
// ffcgw computes a request's home replica: gateway and replica derive
// the same key from the same bytes by construction, so the ring
// placement and the replica's cache entry can never disagree.
func CanonicalKey(body []byte) (runcache.Key, error) {
	req, err := parseRunRequest(body, nil)
	if err != nil {
		return runcache.Key{}, err
	}
	return req.key, nil
}

// parseRunRequest accepts either a bare scenario document (the
// internal/scenario JSON format) or an envelope {"scenario": {...},
// "fault": "..."}; the two are distinguished by the presence of a
// top-level "scenario" key, which the scenario format does not have.
// Everything is validated here — strict JSON (no unknown fields, no
// trailing bytes), a buildable spec, a parseable fault spec — so a
// request that parses can be solved and cached.
//
// sp may be nil (tracing disabled, or a batch item); the parse and
// canonicalize phases are recorded on it when present.
func parseRunRequest(body []byte, sp *obs.Span) (*runRequest, error) {
	sp.Phase("parse")
	var probe map[string]json.RawMessage
	if err := json.Unmarshal(body, &probe); err != nil {
		return nil, fmt.Errorf("request: %v", err)
	}

	var (
		spec     *scenario.Spec
		faultStr string
		err      error
	)
	if raw, ok := probe["scenario"]; ok {
		var env envelope
		dec := json.NewDecoder(bytes.NewReader(body))
		dec.DisallowUnknownFields()
		if err := dec.Decode(&env); err != nil {
			return nil, fmt.Errorf("request: %v", err)
		}
		if tok, err := dec.Token(); err != io.EOF {
			if err == nil {
				return nil, fmt.Errorf("request: trailing data after JSON document (unexpected %v)", tok)
			}
			return nil, fmt.Errorf("request: trailing data after JSON document: %v", err)
		}
		spec, err = scenario.Load(bytes.NewReader(raw))
		if err != nil {
			return nil, err
		}
		faultStr = env.Fault
	} else {
		spec, err = scenario.Load(bytes.NewReader(body))
		if err != nil {
			return nil, err
		}
	}

	// Build once at parse time: it is cheap relative to a run, and it
	// means every key the cache ever sees addresses a solvable spec.
	if _, _, err := spec.Build(); err != nil {
		return nil, err
	}
	cfg, err := fault.Parse(faultStr)
	if err != nil {
		return nil, err
	}

	sp.Phase("canonicalize")
	canon, err := spec.Canonical()
	if err != nil {
		return nil, err
	}
	// The fault spec participates in the content address through its
	// canonical round-trip form, so "loss=0.5,seed=3" and
	// "seed=3,loss=0.5" share an entry.
	return &runRequest{
		spec:  spec,
		fault: cfg,
		key:   runcache.KeyOf(canon, []byte(cfg.String())),
	}, nil
}

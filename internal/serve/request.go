package serve

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"

	"github.com/nettheory/feedbackflow/internal/fault"
	"github.com/nettheory/feedbackflow/internal/fluid"
	"github.com/nettheory/feedbackflow/internal/obs"
	"github.com/nettheory/feedbackflow/internal/runcache"
	"github.com/nettheory/feedbackflow/internal/scenario"
)

// Backend selection values for Config.Backend and the -backend flags.
const (
	BackendAuto     = "auto"
	BackendDiscrete = "discrete"
	BackendFluid    = "fluid"
)

// runRequest is one fully parsed, validated, content-addressed run:
// the scenario, the optional fault spec, the backend the server
// resolved for it, and the cache key derived from their canonical
// forms.
type runRequest struct {
	spec    *scenario.Spec
	fault   fault.Config
	backend string // BackendDiscrete or BackendFluid, already resolved
	key     runcache.Key
}

// envelope is the explicit request form: a scenario document plus an
// optional compact fault spec (docs/ROBUSTNESS.md grammar).
type envelope struct {
	Scenario json.RawMessage `json:"scenario"`
	Fault    string          `json:"fault"`
}

// CanonicalKey parses and validates body exactly as POST /run does —
// bare scenario or {"scenario","fault"} envelope, strict JSON, a
// buildable spec — and returns the content address a default-config
// daemon would cache the result under, without solving anything. It
// is how an ffcgw computes a request's home replica: gateway and
// replicas derive the key from the same canonical bytes, so requests
// for the same scenario always land on the same replica. The key also
// folds in the resolved backend label; a replica running a
// non-default -backend/-fluid-threshold may therefore cache under a
// different key than the gateway computes, which affects nothing —
// ring placement only needs the gateway's own keys to be consistent,
// and the replica's cache is addressed by the replica's keys.
func CanonicalKey(body []byte) (runcache.Key, error) {
	req, err := parseRunRequest(body, nil, BackendAuto, fluid.DefaultThreshold)
	if err != nil {
		return runcache.Key{}, err
	}
	return req.key, nil
}

// parseRunRequest accepts either a bare scenario document (the
// internal/scenario JSON format) or an envelope {"scenario": {...},
// "fault": "..."}; the two are distinguished by the presence of a
// top-level "scenario" key, which the scenario format does not have.
// Everything is validated here — strict JSON (no unknown fields, no
// trailing bytes), a buildable spec, a parseable fault spec — so a
// request that parses can be solved and cached.
//
// sp may be nil (tracing disabled, or a batch item); the parse and
// canonicalize phases are recorded on it when present.
//
// backend is the server's Config.Backend (BackendAuto routes
// populations of at least threshold connections to the fluid solver)
// and threshold its Config.FluidThreshold; the resolved choice is
// validated here — Build for discrete, fluid.FromSpec for fluid — and
// recorded in the request and its cache key, so the two backends'
// differently-shaped reports never share a cache entry. Fault
// injection is discrete-only: auto falls back to discrete for faulted
// requests, while an explicit fluid backend rejects them.
func parseRunRequest(body []byte, sp *obs.Span, backend string, threshold int64) (*runRequest, error) {
	sp.Phase("parse")
	var probe map[string]json.RawMessage
	if err := json.Unmarshal(body, &probe); err != nil {
		return nil, fmt.Errorf("request: %v", err)
	}

	var (
		spec     *scenario.Spec
		faultStr string
		err      error
	)
	if raw, ok := probe["scenario"]; ok {
		var env envelope
		dec := json.NewDecoder(bytes.NewReader(body))
		dec.DisallowUnknownFields()
		if err := dec.Decode(&env); err != nil {
			return nil, fmt.Errorf("request: %v", err)
		}
		if tok, err := dec.Token(); err != io.EOF {
			if err == nil {
				return nil, fmt.Errorf("request: trailing data after JSON document (unexpected %v)", tok)
			}
			return nil, fmt.Errorf("request: trailing data after JSON document: %v", err)
		}
		spec, err = scenario.Load(bytes.NewReader(raw))
		if err != nil {
			return nil, err
		}
		faultStr = env.Fault
	} else {
		spec, err = scenario.Load(bytes.NewReader(body))
		if err != nil {
			return nil, err
		}
	}

	cfg, err := fault.Parse(faultStr)
	if err != nil {
		return nil, err
	}
	resolved, err := resolveBackend(spec, cfg, backend, threshold)
	if err != nil {
		return nil, err
	}
	// Compile once at parse time on the resolved backend's own path —
	// Build for discrete, FromSpec for fluid. It is cheap relative to a
	// run, and it means every key the cache ever sees addresses a spec
	// the chosen solver accepts (a 10⁷-connection spec never touches
	// Build, whose population materialization the fluid path exists to
	// avoid).
	if resolved == BackendFluid {
		_, _, err = fluid.FromSpec(spec)
	} else {
		_, _, err = spec.Build()
	}
	if err != nil {
		return nil, err
	}

	sp.Phase("canonicalize")
	canon, err := spec.Canonical()
	if err != nil {
		return nil, err
	}
	// The fault spec participates in the content address through its
	// canonical round-trip form, so "loss=0.5,seed=3" and
	// "seed=3,loss=0.5" share an entry; the backend label keeps the
	// class-indexed fluid report and the connection-indexed discrete
	// report of the same scenario under distinct entries.
	return &runRequest{
		spec:    spec,
		fault:   cfg,
		backend: resolved,
		key:     runcache.KeyOf(canon, []byte(cfg.String()), []byte(resolved)),
	}, nil
}

// resolveBackend turns the configured backend choice into a concrete
// one for this request.
func resolveBackend(spec *scenario.Spec, fc fault.Config, backend string, threshold int64) (string, error) {
	total, err := spec.TotalConnections()
	if err != nil {
		return "", err
	}
	switch backend {
	case BackendDiscrete:
		return BackendDiscrete, nil
	case BackendFluid:
		if fc.Enabled() {
			return "", fmt.Errorf("request: fault injection is per-connection and requires the discrete backend")
		}
		return BackendFluid, nil
	case BackendAuto, "":
		if threshold <= 0 {
			threshold = fluid.DefaultThreshold
		}
		if total >= threshold && !fc.Enabled() {
			return BackendFluid, nil
		}
		return BackendDiscrete, nil
	}
	return "", fmt.Errorf("request: unknown backend %q (want auto, discrete, or fluid)", backend)
}

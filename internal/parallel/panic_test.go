package parallel

import (
	"context"
	"errors"
	"strings"
	"sync/atomic"
	"testing"
)

// TestForEachRecoversPanic: one panicking item in a concurrent grid
// fails its index with a *PanicError instead of crashing the process;
// the other items still run.
func TestForEachRecoversPanic(t *testing.T) {
	var ran atomic.Int64
	err := ForEach(context.Background(), 64, 8, func(i int) error {
		if i == 17 {
			panic("kaboom")
		}
		ran.Add(1)
		return nil
	})
	var pe *PanicError
	if !errors.As(err, &pe) {
		t.Fatalf("error = %v (%T), want *PanicError", err, err)
	}
	if pe.Index != 17 || pe.Value != "kaboom" {
		t.Fatalf("PanicError = {Index: %d, Value: %v}, want {17, kaboom}", pe.Index, pe.Value)
	}
	if !strings.Contains(pe.Stack, "goroutine") {
		t.Fatalf("PanicError.Stack does not look like a stack trace: %q", pe.Stack)
	}
	if !strings.Contains(pe.Error(), "item 17 panicked") {
		t.Fatalf("Error() = %q", pe.Error())
	}
	if ran.Load() == 0 {
		t.Fatal("no other item ran")
	}
}

// TestForEachRecoversPanicSequential: the workers<=1 degenerate path
// shares the same recovery.
func TestForEachRecoversPanicSequential(t *testing.T) {
	err := ForEach(context.Background(), 4, 1, func(i int) error {
		if i == 2 {
			panic(errors.New("wrapped"))
		}
		return nil
	})
	var pe *PanicError
	if !errors.As(err, &pe) || pe.Index != 2 {
		t.Fatalf("error = %v, want *PanicError at index 2", err)
	}
}

// TestForEachPanicForcedSchedule pins the determinism contract under
// panics the way cancel_test.go does for errors: item 9 is guaranteed
// to panic first (item 3 blocks on its signal), yet the reported
// failure must still be the lowest-indexed panicking item, 3.
func TestForEachPanicForcedSchedule(t *testing.T) {
	for iter := 0; iter < 200; iter++ {
		highDone := make(chan struct{})
		err := ForEach(context.Background(), 16, 4, func(i int) error {
			switch i {
			case 3:
				<-highDone
				panic("low")
			case 9:
				defer close(highDone)
				panic("high")
			}
			return nil
		})
		var pe *PanicError
		if !errors.As(err, &pe) {
			t.Fatalf("iter %d: error = %v, want *PanicError", iter, err)
		}
		if pe.Index != 3 || pe.Value != "low" {
			t.Fatalf("iter %d: got panic from item %d (%v), want item 3", iter, pe.Index, pe.Value)
		}
	}
}

// TestMapPanicReturnsError: Map surfaces the panic as its error and
// returns no partial results.
func TestMapPanicReturnsError(t *testing.T) {
	out, err := Map(context.Background(), 8, 4, func(i int) (int, error) {
		if i == 5 {
			panic(i)
		}
		return i * i, nil
	})
	if out != nil {
		t.Fatalf("partial results returned: %v", out)
	}
	var pe *PanicError
	if !errors.As(err, &pe) || pe.Index != 5 || pe.Value != 5 {
		t.Fatalf("error = %v, want *PanicError{Index: 5, Value: 5}", err)
	}
}

// TestPanicLosesToLowerError: a plain error at a lower index beats a
// panic at a higher one — panics flow through the same
// lowest-failing-index selection as errors.
func TestPanicLosesToLowerError(t *testing.T) {
	errLow := errors.New("low error")
	panicked := make(chan struct{})
	err := ForEach(context.Background(), 8, 4, func(i int) error {
		switch i {
		case 1:
			<-panicked
			return errLow
		case 6:
			defer close(panicked)
			panic("high panic")
		}
		return nil
	})
	if !errors.Is(err, errLow) {
		t.Fatalf("error = %v, want the lower-indexed plain error", err)
	}
}

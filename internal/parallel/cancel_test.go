package parallel

import (
	"context"
	"errors"
	"sync/atomic"
	"testing"
)

// TestForEachCancelRacesError pins down the error contract when a
// cancellation and item failures land mid-grid at once: the winner is
// still the lowest-indexed failing item, not the cancellation and not
// a higher-indexed error that happened to be reported first. The
// schedule is forced, not hoped for — item 2 is guaranteed to be
// in flight when item 6 cancels the grid, because claims come off a
// strictly increasing atomic counter and item 6 waits for item 2's
// started signal before cancelling.
func TestForEachCancelRacesError(t *testing.T) {
	errLow := errors.New("low")
	errHigh := errors.New("high")
	for iter := 0; iter < 200; iter++ {
		ctx, cancel := context.WithCancel(context.Background())
		lowRunning := make(chan struct{})
		err := ForEach(ctx, 16, 4, func(i int) error {
			switch {
			case i == 2:
				// In flight across the cancellation; fails only after it.
				close(lowRunning)
				<-ctx.Done()
				return errLow
			case i == 6:
				<-lowRunning
				cancel()
				return errHigh
			case i >= 8:
				// Mid-grid stragglers: drain only once cancelled.
				<-ctx.Done()
				return nil
			}
			return nil
		})
		cancel()
		if !errors.Is(err, errLow) {
			t.Fatalf("iter %d: error = %v, want errLow from item 2", iter, err)
		}
	}
}

// TestForEachCancelMidGridStopsClaims checks that a cancellation
// landing mid-grid keeps the bulk of the grid from starting — only
// items already claimed by a worker may still run — that no item runs
// twice, and that the cancellation is the reported error when no item
// failed.
func TestForEachCancelMidGridStopsClaims(t *testing.T) {
	const n = 1 << 14
	const workers = 8
	ctx, cancel := context.WithCancel(context.Background())
	var visits [n]atomic.Int64
	var count atomic.Int64
	err := ForEach(ctx, n, workers, func(i int) error {
		visits[i].Add(1)
		if count.Add(1) == 32 {
			cancel()
		}
		return nil
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("error = %v, want context.Canceled", err)
	}
	// 32 items ran before the cancel; each worker may already have
	// claimed one more. Everything else must never have started.
	ran := int(count.Load())
	if ran < 32 || ran >= 32+workers+1 {
		t.Fatalf("%d items ran, want within [32, %d)", ran, 32+workers+1)
	}
	for i := range visits {
		if c := visits[i].Load(); c > 1 {
			t.Fatalf("item %d ran %d times", i, c)
		}
	}
}

// TestMapCancelMidGrid checks Map's face of the same contract: a
// mid-grid cancellation yields nil results and the context error, and
// a mid-grid failure beats the cancellation when its index is lowest.
func TestMapCancelMidGrid(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	var count atomic.Int64
	out, err := Map(ctx, 4096, 4, func(i int) (int, error) {
		if count.Add(1) == 16 {
			cancel()
		}
		return i, nil
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("error = %v, want context.Canceled", err)
	}
	if out != nil {
		t.Fatalf("results = %d values, want nil on cancellation", len(out))
	}

	errBoom := errors.New("boom")
	ctx2, cancel2 := context.WithCancel(context.Background())
	defer cancel2()
	boomRunning := make(chan struct{})
	out, err = Map(ctx2, 16, 4, func(i int) (int, error) {
		switch {
		case i == 1:
			close(boomRunning)
			<-ctx2.Done()
			return 0, errBoom
		case i == 5:
			<-boomRunning
			cancel2()
			return 0, errors.New("late")
		case i >= 8:
			<-ctx2.Done()
		}
		return i, nil
	})
	if !errors.Is(err, errBoom) {
		t.Fatalf("error = %v, want errBoom from item 1", err)
	}
	if out != nil {
		t.Fatalf("results = %d values, want nil on error", len(out))
	}
}

package parallel

import (
	"fmt"
	"runtime/debug"
)

// PanicError is the error a pool run reports when an item panicked.
// The pool recovers panics on the worker goroutine — a panicking item
// would otherwise kill the whole process, taking every other in-flight
// item (and, in ffsweep, hours of sweep progress) with it — and
// converts them to errors that flow through the usual
// lowest-failing-index selection, so a panic anywhere in a grid is
// reported exactly like a model error at the same index.
type PanicError struct {
	// Index is the item that panicked.
	Index int
	// Value is the value passed to panic.
	Value interface{}
	// Stack is the panicking goroutine's stack trace, captured at
	// recovery (runtime/debug.Stack).
	Stack string
}

// Error implements error. The stack is kept out of the one-line
// message; callers that want it (the CLI fatal paths) unwrap with
// errors.As and print PanicError.Stack.
func (e *PanicError) Error() string {
	return fmt.Sprintf("parallel: item %d panicked: %v", e.Index, e.Value)
}

// recoverPanic converts a recovered panic value into a *PanicError
// for item i; called from the deferred telemetry block of runOne.
func recoverPanic(i int, v interface{}) *PanicError {
	return &PanicError{Index: i, Value: v, Stack: string(debug.Stack())}
}

package parallel

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
)

// TestMapOrdersResults checks the central determinism property: Map
// returns out[i] = fn(i) in index order, for worker counts below, at,
// and above the item count, including the sequential fast path.
func TestMapOrdersResults(t *testing.T) {
	const n = 100
	for _, workers := range []int{0, 1, 2, 3, 8, n, n + 7} {
		out, err := Map(context.Background(), n, workers, func(i int) (int, error) {
			return i * i, nil
		})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if len(out) != n {
			t.Fatalf("workers=%d: %d results for %d items", workers, len(out), n)
		}
		for i, v := range out {
			if v != i*i {
				t.Fatalf("workers=%d: out[%d] = %d, want %d", workers, i, v, i*i)
			}
		}
	}
}

// TestForEachVisitsEveryItem checks that each index is claimed exactly
// once regardless of worker count.
func TestForEachVisitsEveryItem(t *testing.T) {
	const n = 257
	for _, workers := range []int{1, 2, 5, 16} {
		var visits [n]atomic.Int64
		if err := ForEach(context.Background(), n, workers, func(i int) error {
			visits[i].Add(1)
			return nil
		}); err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		for i := range visits {
			if c := visits[i].Load(); c != 1 {
				t.Fatalf("workers=%d: item %d visited %d times", workers, i, c)
			}
		}
	}
}

// TestForEachDeterministicError checks the first-error contract: with
// several failing items, the reported error is always the one from the
// lowest failing index, no matter how workers interleave. Runs many
// iterations to give the scheduler chances to misorder.
func TestForEachDeterministicError(t *testing.T) {
	const n = 64
	failing := map[int]bool{9: true, 23: true, 57: true}
	for _, workers := range []int{1, 2, 4, 8} {
		for iter := 0; iter < 50; iter++ {
			err := ForEach(context.Background(), n, workers, func(i int) error {
				if failing[i] {
					return fmt.Errorf("item %d failed", i)
				}
				return nil
			})
			if err == nil {
				t.Fatalf("workers=%d iter %d: no error reported", workers, iter)
			}
			if got, want := err.Error(), "item 9 failed"; got != want {
				t.Fatalf("workers=%d iter %d: error %q, want %q", workers, iter, got, want)
			}
		}
	}
}

// TestForEachErrorRunsEverythingBelow checks the stronger invariant
// behind the deterministic error: every item below the reported
// failure has actually run (its side effects are complete), so a
// partial Map result is never missing pre-failure entries.
func TestForEachErrorRunsEverythingBelow(t *testing.T) {
	const n = 200
	const failAt = 150
	var ran [n]atomic.Bool
	err := ForEach(context.Background(), n, 8, func(i int) error {
		ran[i].Store(true)
		if i >= failAt {
			return errors.New("boom")
		}
		return nil
	})
	if err == nil {
		t.Fatal("no error reported")
	}
	for i := 0; i < failAt; i++ {
		if !ran[i].Load() {
			t.Fatalf("item %d below the failure was skipped", i)
		}
	}
}

// TestForEachCancellation checks that cancelling the context stops
// workers from claiming new items and is reported as the error.
func TestForEachCancellation(t *testing.T) {
	const n = 10000
	ctx, cancel := context.WithCancel(context.Background())
	var count atomic.Int64
	err := ForEach(ctx, n, 4, func(i int) error {
		if count.Add(1) == 5 {
			cancel()
		}
		return nil
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("error = %v, want context.Canceled", err)
	}
	if c := count.Load(); c >= n {
		t.Fatalf("all %d items ran despite cancellation", n)
	}
}

// TestForEachSequentialCancellation covers the workers<=1 fast path.
func TestForEachSequentialCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	var count int
	err := ForEach(ctx, 100, 1, func(i int) error {
		count++
		if count == 3 {
			cancel()
		}
		return nil
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("error = %v, want context.Canceled", err)
	}
	if count != 3 {
		t.Fatalf("%d items ran after cancellation, want 3", count)
	}
}

// TestForEachBoundsConcurrency checks that no more than the requested
// number of workers run items simultaneously.
func TestForEachBoundsConcurrency(t *testing.T) {
	const n = 500
	const workers = 3
	var busy, peak atomic.Int64
	var mu sync.Mutex
	if err := ForEach(context.Background(), n, workers, func(i int) error {
		b := busy.Add(1)
		mu.Lock()
		if b > peak.Load() {
			peak.Store(b)
		}
		mu.Unlock()
		runtime.Gosched()
		busy.Add(-1)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if p := peak.Load(); p > workers {
		t.Fatalf("observed %d concurrent items, want <= %d", p, workers)
	}
}

// TestForEachEmptyAndMapError covers the degenerate inputs.
func TestForEachEmptyAndMapError(t *testing.T) {
	if err := ForEach(context.Background(), 0, 4, func(int) error {
		t.Fatal("fn called for n=0")
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if err := ForEach(ctx, 0, 4, func(int) error { return nil }); !errors.Is(err, context.Canceled) {
		t.Fatalf("n=0 with cancelled ctx: error = %v, want context.Canceled", err)
	}
	out, err := Map(context.Background(), 10, 4, func(i int) (int, error) {
		if i == 4 {
			return 0, errors.New("boom")
		}
		return i, nil
	})
	if err == nil || out != nil {
		t.Fatalf("Map with failing item: out = %v, err = %v; want nil, error", out, err)
	}
}

// TestWorkers checks the 0-means-GOMAXPROCS convention.
func TestWorkers(t *testing.T) {
	if got := Workers(7); got != 7 {
		t.Errorf("Workers(7) = %d", got)
	}
	want := runtime.GOMAXPROCS(0)
	if got := Workers(0); got != want {
		t.Errorf("Workers(0) = %d, want %d", got, want)
	}
	if got := Workers(-3); got != want {
		t.Errorf("Workers(-3) = %d, want %d", got, want)
	}
}

// TestSnapshotCounters checks that the pool telemetry advances with
// work and that the busy gauge settles back to zero.
func TestSnapshotCounters(t *testing.T) {
	before := Snapshot()
	const n = 25
	if err := ForEach(context.Background(), n, 4, func(i int) error {
		if i == 13 {
			return errors.New("boom")
		}
		return nil
	}); err == nil {
		t.Fatal("no error reported")
	}
	after := Snapshot()
	// Counters snapshot as int64, gauges as float64.
	delta := func(key string) int64 {
		a, _ := after[key].(int64)
		b, _ := before[key].(int64)
		return a - b
	}
	if d := delta("parallel.runs"); d != 1 {
		t.Errorf("parallel.runs advanced by %v, want 1", d)
	}
	if d := delta("parallel.tasks_started"); d < 1 || d > int64(n) {
		t.Errorf("parallel.tasks_started advanced by %v, want in [1, %d]", d, n)
	}
	if d := delta("parallel.tasks_failed"); d != 1 {
		t.Errorf("parallel.tasks_failed advanced by %v, want 1", d)
	}
	if d := delta("parallel.tasks_completed"); d < 0 {
		t.Errorf("parallel.tasks_completed advanced by %v, want >= 0", d)
	}
	if g, _ := after["parallel.workers_busy"].(float64); g != 0 {
		t.Errorf("parallel.workers_busy = %v after all pools drained, want 0", g)
	}
	if started, completed, failed := delta("parallel.tasks_started"), delta("parallel.tasks_completed"), delta("parallel.tasks_failed"); started != completed+failed {
		t.Errorf("started %v != completed %v + failed %v", started, completed, failed)
	}
}

// Package parallel is the bounded worker pool behind the repository's
// parallel drivers: ffsweep's row-parallel grid evaluation, the
// fftables experiment fan-out, and eventsim's replicated simulations.
//
// The design constraints, in order:
//
//  1. Determinism. Map collects results in index order, and a failing
//     run always reports the error of the lowest-indexed failing item,
//     so output and errors are byte-identical no matter how many
//     workers run or how the scheduler interleaves them.
//  2. Bounded concurrency. At most Workers(workers) goroutines touch
//     items at any moment; work is claimed from an atomic counter, so
//     no per-item channel traffic or fan-in machinery is needed.
//  3. Cancellation. A context cancels outstanding work between items;
//     items already started are allowed to finish (model evaluations
//     are short and side-effect free).
//
// The package also counts its work through package-level telemetry
// (see Snapshot), which the binaries expose over expvar via their
// -debug-addr flag; docs/OBSERVABILITY.md documents the counter names.
package parallel

import (
	"context"
	"runtime"
	"sync"
	"sync/atomic"

	"github.com/nettheory/feedbackflow/internal/obs"
)

// Package-level telemetry: every pool run and item outcome is counted
// here, so a -debug-addr diagnostics server shows live progress of any
// parallel driver in the process.
var (
	registry = obs.NewRegistry()
	// runs counts ForEach/Map invocations.
	runs = registry.Counter("parallel.runs")
	// tasksStarted counts items handed to a worker.
	tasksStarted = registry.Counter("parallel.tasks_started")
	// tasksCompleted counts items that returned without error.
	tasksCompleted = registry.Counter("parallel.tasks_completed")
	// tasksFailed counts items that returned an error.
	tasksFailed = registry.Counter("parallel.tasks_failed")
	// workersBusy gauges the number of currently running workers.
	workersBusy = registry.Gauge("parallel.workers_busy")
	busyCount   atomic.Int64
)

// Snapshot returns the pool telemetry keyed by counter name, in the
// shape expvar.Func expects. Binaries publish it next to their own
// registries.
func Snapshot() map[string]interface{} { return registry.Snapshot() }

// Workers normalizes a worker-count knob: values > 0 are taken as
// given; anything else means "one worker per available CPU"
// (GOMAXPROCS). The convention is shared by every -workers/-parallel
// flag so 0 always means "use the machine".
func Workers(n int) int {
	if n > 0 {
		return n
	}
	return runtime.GOMAXPROCS(0)
}

// ForEach invokes fn(i) for every i in [0, n) using at most
// Workers(workers) concurrent goroutines and returns the first error
// by item index — not by completion time — so the reported failure is
// deterministic. A non-nil error (or ctx cancellation) stops workers
// from claiming further items; items already running finish first.
// With workers <= 1 the loop degenerates to a plain sequential for
// loop on the calling goroutine.
func ForEach(ctx context.Context, n, workers int, fn func(i int) error) error {
	if n <= 0 {
		return ctx.Err()
	}
	runs.Inc()
	workers = Workers(workers)
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			if err := ctx.Err(); err != nil {
				return err
			}
			if err := runOne(i, fn); err != nil {
				return err
			}
		}
		return nil
	}

	var (
		next     atomic.Int64 // next unclaimed item
		mu       sync.Mutex
		firstIdx = n // lowest failing index seen
		firstErr error
		wg       sync.WaitGroup
	)
	fail := func(i int, err error) {
		mu.Lock()
		if i < firstIdx {
			firstIdx, firstErr = i, err
		}
		mu.Unlock()
	}
	// skip reports whether item i is above an already-failed index.
	// After a failure, workers keep claiming — and running — items
	// below the current lowest failure, so the reported error is the
	// minimum of the (deterministic) failing set no matter how the
	// scheduler interleaved the workers: an item below the final
	// minimum can never have been skipped, because firstIdx only
	// decreases.
	skip := func(i int) bool {
		mu.Lock()
		defer mu.Unlock()
		return firstErr != nil && i >= firstIdx
	}
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n || ctx.Err() != nil {
					return
				}
				if skip(i) {
					continue
				}
				if err := runOne(i, fn); err != nil {
					fail(i, err)
				}
			}
		}()
	}
	wg.Wait()
	if firstErr != nil {
		return firstErr
	}
	return ctx.Err()
}

// runOne executes one item under the pool telemetry, converting a
// panic in the item into a *PanicError so one bad item fails its
// index instead of crashing the process (see PanicError).
func runOne(i int, fn func(i int) error) (err error) {
	tasksStarted.Inc()
	workersBusy.Set(float64(busyCount.Add(1)))
	defer func() {
		workersBusy.Set(float64(busyCount.Add(-1)))
		if v := recover(); v != nil {
			err = recoverPanic(i, v)
		}
		if err != nil {
			tasksFailed.Inc()
		} else {
			tasksCompleted.Inc()
		}
	}()
	return fn(i)
}

// Map applies fn to every index in [0, n) with at most
// Workers(workers) concurrent goroutines and returns the results in
// index order — the property that lets the sweep drivers compute rows
// concurrently yet emit byte-identical CSV. On error the results are
// nil and the error is the lowest-indexed failure (see ForEach).
func Map[T any](ctx context.Context, n, workers int, fn func(i int) (T, error)) ([]T, error) {
	out := make([]T, n)
	err := ForEach(ctx, n, workers, func(i int) error {
		v, err := fn(i)
		if err != nil {
			return err
		}
		out[i] = v
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

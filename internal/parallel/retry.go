package parallel

import (
	"context"
	"fmt"
	"math/rand"
	"time"
)

// Policy parameterizes Retry: a capped exponential backoff with
// optional jitter, a bounded attempt count, and an optional elapsed-
// time budget. The zero value is usable — three attempts, 10ms base
// delay doubling to a 1s cap, no jitter, no budget.
//
// Every nondeterministic input is injectable: jitter draws come from
// an explicitly seeded Rand, elapsed time from Now, and waiting from
// Sleep, so tests (and deterministic harnesses) can drive Retry
// without wall-clock time or ambient entropy.
type Policy struct {
	// MaxAttempts bounds the number of fn invocations (default 3).
	MaxAttempts int
	// BaseDelay is the wait before the first retry (default 10ms).
	BaseDelay time.Duration
	// MaxDelay caps the backoff growth (default 1s).
	MaxDelay time.Duration
	// Multiplier grows the delay between retries (default 2).
	Multiplier float64
	// Jitter spreads each delay uniformly over ±Jitter fraction of
	// itself (e.g. 0.2 → a delay in [0.8d, 1.2d]). Requires Rand.
	Jitter float64
	// Rand supplies jitter draws; nil disables jitter. Pass an
	// explicitly seeded generator — never ambient entropy — so retry
	// schedules are reproducible.
	Rand *rand.Rand
	// Budget, when positive, bounds the total elapsed time (measured
	// with Now) across attempts and waits: a retry whose delay would
	// exceed the budget is not attempted.
	Budget time.Duration
	// Now supplies the clock behind Budget (default time.Now).
	Now func() time.Time
	// Sleep waits between attempts (default: a timer raced against
	// ctx). Tests inject it to run schedules instantly.
	Sleep func(ctx context.Context, d time.Duration) error
	// Retryable, when non-nil, filters errors: a non-retryable error
	// is returned immediately, unwrapped. nil retries every error.
	Retryable func(error) bool
}

func (p Policy) withDefaults() Policy {
	if p.MaxAttempts <= 0 {
		p.MaxAttempts = 3
	}
	if p.BaseDelay <= 0 {
		p.BaseDelay = 10 * time.Millisecond
	}
	if p.MaxDelay <= 0 {
		p.MaxDelay = time.Second
	}
	if p.Multiplier < 1 {
		p.Multiplier = 2
	}
	if p.Now == nil {
		p.Now = time.Now
	}
	if p.Sleep == nil {
		p.Sleep = sleepCtx
	}
	return p
}

// Retry invokes fn until it succeeds, the attempt budget or time
// budget runs out, the error is not retryable, or ctx is done. The
// returned error wraps the last error fn produced (errors.Is/As see
// through it); a non-retryable error is returned as-is.
//
// ffsweep wraps flaky per-row work in Retry so a transient failure
// (an eventsim replication hitting a resource blip) costs one backoff
// instead of the whole sweep.
func Retry(ctx context.Context, p Policy, fn func() error) error {
	p = p.withDefaults()
	start := p.Now()
	delay := p.BaseDelay
	var last error
	for attempt := 1; ; attempt++ {
		if err := ctx.Err(); err != nil {
			if last != nil {
				return fmt.Errorf("parallel: retry canceled after %d attempts: %w", attempt-1, last)
			}
			return fmt.Errorf("parallel: retry canceled before attempt %d: %w", attempt, err)
		}
		err := fn()
		last = err
		if err == nil {
			return nil
		}
		if p.Retryable != nil && !p.Retryable(err) {
			return err
		}
		if attempt >= p.MaxAttempts {
			return fmt.Errorf("parallel: retry budget exhausted after %d attempts: %w", attempt, err)
		}
		d := delay
		if p.Jitter > 0 && p.Rand != nil {
			d = time.Duration(float64(d) * (1 + p.Jitter*(2*p.Rand.Float64()-1)))
		}
		if d > p.MaxDelay {
			d = p.MaxDelay
		}
		if p.Budget > 0 && p.Now().Sub(start)+d > p.Budget {
			return fmt.Errorf("parallel: retry deadline exceeded after %d attempts: %w", attempt, err)
		}
		if serr := p.Sleep(ctx, d); serr != nil {
			return fmt.Errorf("parallel: retry canceled after %d attempts: %w", attempt, err)
		}
		delay = time.Duration(float64(delay) * p.Multiplier)
		if delay > p.MaxDelay {
			delay = p.MaxDelay
		}
	}
}

// sleepCtx waits d or until ctx is done, whichever comes first.
func sleepCtx(ctx context.Context, d time.Duration) error {
	if d <= 0 {
		return ctx.Err()
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return ctx.Err()
	case <-t.C:
		return nil
	}
}

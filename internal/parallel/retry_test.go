package parallel

import (
	"context"
	"errors"
	"math/rand"
	"strings"
	"testing"
	"time"
)

// fakeSchedule is an injected Sleep/Now pair: sleeps record their
// durations and advance a synthetic clock instantly.
type fakeSchedule struct {
	now    time.Time
	slept  []time.Duration
	cancel context.CancelFunc // when set, fires after cancelAfter sleeps
	after  int
}

func (f *fakeSchedule) Sleep(ctx context.Context, d time.Duration) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	f.slept = append(f.slept, d)
	f.now = f.now.Add(d)
	if f.cancel != nil && len(f.slept) >= f.after {
		f.cancel()
	}
	return nil
}

func (f *fakeSchedule) Now() time.Time { return f.now }

func TestRetryFirstTrySucceeds(t *testing.T) {
	sched := &fakeSchedule{}
	calls := 0
	err := Retry(context.Background(), Policy{Sleep: sched.Sleep, Now: sched.Now}, func() error {
		calls++
		return nil
	})
	if err != nil || calls != 1 || len(sched.slept) != 0 {
		t.Fatalf("err=%v calls=%d sleeps=%v, want clean single call", err, calls, sched.slept)
	}
}

func TestRetryBackoffIsCappedExponential(t *testing.T) {
	sched := &fakeSchedule{}
	failures := errors.New("transient")
	calls := 0
	err := Retry(context.Background(), Policy{
		MaxAttempts: 6,
		BaseDelay:   10 * time.Millisecond,
		MaxDelay:    40 * time.Millisecond,
		Multiplier:  2,
		Sleep:       sched.Sleep,
		Now:         sched.Now,
	}, func() error {
		calls++
		if calls < 6 {
			return failures
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	want := []time.Duration{10, 20, 40, 40, 40}
	for i := range want {
		want[i] *= time.Millisecond
	}
	if len(sched.slept) != len(want) {
		t.Fatalf("slept %v, want %v", sched.slept, want)
	}
	for i := range want {
		if sched.slept[i] != want[i] {
			t.Fatalf("sleep %d = %v, want %v (full schedule %v)", i, sched.slept[i], want[i], sched.slept)
		}
	}
}

func TestRetryBudgetExhaustion(t *testing.T) {
	sched := &fakeSchedule{}
	sentinel := errors.New("always fails")
	calls := 0
	err := Retry(context.Background(), Policy{MaxAttempts: 4, Sleep: sched.Sleep, Now: sched.Now}, func() error {
		calls++
		return sentinel
	})
	if calls != 4 {
		t.Fatalf("fn called %d times, want 4", calls)
	}
	if !errors.Is(err, sentinel) {
		t.Fatalf("error %v does not wrap the last failure", err)
	}
	if !strings.Contains(err.Error(), "exhausted after 4 attempts") {
		t.Fatalf("error = %q", err)
	}
}

func TestRetryContextCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	sched := &fakeSchedule{cancel: cancel, after: 2}
	sentinel := errors.New("flaky")
	calls := 0
	err := Retry(ctx, Policy{MaxAttempts: 10, Sleep: sched.Sleep, Now: sched.Now}, func() error {
		calls++
		return sentinel
	})
	// The cancel fires during the second backoff; the third attempt
	// must never start.
	if calls != 2 {
		t.Fatalf("fn called %d times, want 2", calls)
	}
	if !errors.Is(err, sentinel) {
		t.Fatalf("error %v does not wrap the last failure", err)
	}
	if !strings.Contains(err.Error(), "canceled") {
		t.Fatalf("error = %q", err)
	}
}

func TestRetryCanceledBeforeFirstAttempt(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	err := Retry(ctx, Policy{}, func() error {
		t.Fatal("fn ran under a dead context")
		return nil
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("error = %v, want context.Canceled", err)
	}
}

func TestRetryNonRetryableReturnsImmediately(t *testing.T) {
	fatal := errors.New("fatal")
	calls := 0
	err := Retry(context.Background(), Policy{
		MaxAttempts: 5,
		Sleep:       (&fakeSchedule{}).Sleep,
		Retryable:   func(err error) bool { return !errors.Is(err, fatal) },
	}, func() error {
		calls++
		return fatal
	})
	if calls != 1 {
		t.Fatalf("fn called %d times, want 1", calls)
	}
	if err != fatal {
		t.Fatalf("error = %v, want the unwrapped fatal error", err)
	}
}

func TestRetryTimeBudget(t *testing.T) {
	sched := &fakeSchedule{}
	sentinel := errors.New("slow failure")
	calls := 0
	err := Retry(context.Background(), Policy{
		MaxAttempts: 100,
		BaseDelay:   40 * time.Millisecond,
		MaxDelay:    40 * time.Millisecond,
		Budget:      100 * time.Millisecond,
		Sleep:       sched.Sleep,
		Now:         sched.Now,
	}, func() error {
		calls++
		return sentinel
	})
	// Two 40ms waits fit in the 100ms budget, a third would not:
	// three attempts total.
	if calls != 3 {
		t.Fatalf("fn called %d times, want 3", calls)
	}
	if !errors.Is(err, sentinel) || !strings.Contains(err.Error(), "deadline exceeded") {
		t.Fatalf("error = %q", err)
	}
}

func TestRetryJitterIsSeeded(t *testing.T) {
	run := func(seed int64) []time.Duration {
		sched := &fakeSchedule{}
		sentinel := errors.New("transient")
		_ = Retry(context.Background(), Policy{
			MaxAttempts: 5,
			BaseDelay:   100 * time.Millisecond,
			MaxDelay:    time.Hour,
			Jitter:      0.5,
			Rand:        rand.New(rand.NewSource(seed)),
			Sleep:       sched.Sleep,
			Now:         sched.Now,
		}, func() error { return sentinel })
		return sched.slept
	}
	a, b := run(7), run(7)
	if len(a) != 4 || len(b) != 4 {
		t.Fatalf("schedules %v and %v, want 4 sleeps each", a, b)
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed diverged: %v vs %v", a, b)
		}
	}
	jittered := false
	for i, d := range a {
		base := 100 * time.Millisecond << i
		if d != base {
			jittered = true
		}
		if d < base/2 || d > base*3/2 {
			t.Fatalf("sleep %d = %v outside ±50%% of %v", i, d, base)
		}
	}
	if !jittered {
		t.Fatal("jitter never moved a delay")
	}
	c := run(8)
	same := len(c) == len(a)
	if same {
		for i := range a {
			if a[i] != c[i] {
				same = false
			}
		}
	}
	if same {
		t.Fatal("different seeds produced identical schedules")
	}
}

package stats

import (
	"fmt"
	"math"
)

// Autocorrelation returns the sample autocorrelation of xs at the
// given lag: the correlation between x_t and x_{t+lag} around the
// common mean. Lag 0 returns 1 for any non-constant series. It returns
// an error when the lag is out of range or the series is too short or
// constant.
func Autocorrelation(xs []float64, lag int) (float64, error) {
	if lag < 0 || lag >= len(xs) {
		return 0, fmt.Errorf("stats: lag %d outside [0,%d)", lag, len(xs))
	}
	if len(xs) < 2 {
		return 0, fmt.Errorf("stats: need at least 2 samples, have %d", len(xs))
	}
	m := Mean(xs)
	var num, den float64
	for t := 0; t+lag < len(xs); t++ {
		num += (xs[t] - m) * (xs[t+lag] - m)
	}
	for _, x := range xs {
		den += (x - m) * (x - m)
	}
	if den == 0 {
		return 0, fmt.Errorf("stats: constant series has no autocorrelation")
	}
	return num / den, nil
}

// IntegratedAutocorrTime estimates the integrated autocorrelation time
// τ = 1 + 2·Σ_k ρ(k), truncating the sum at the first non-positive
// autocorrelation (the standard initial-positive-sequence rule). A
// value of 1 means independent samples; larger values mean each sample
// carries 1/τ of an independent sample's information.
func IntegratedAutocorrTime(xs []float64) (float64, error) {
	if len(xs) < 4 {
		return 0, fmt.Errorf("stats: need at least 4 samples, have %d", len(xs))
	}
	tau := 1.0
	maxLag := len(xs) / 4
	for k := 1; k <= maxLag; k++ {
		rho, err := Autocorrelation(xs, k)
		if err != nil {
			return 0, err
		}
		if rho <= 0 {
			break
		}
		tau += 2 * rho
	}
	return tau, nil
}

// EffectiveSampleSize returns n/τ: the number of effectively
// independent samples in the correlated series xs. It is the quantity
// that justifies a batch-means batch count — batches should each hold
// several τ's worth of samples.
func EffectiveSampleSize(xs []float64) (float64, error) {
	tau, err := IntegratedAutocorrTime(xs)
	if err != nil {
		return 0, err
	}
	ess := float64(len(xs)) / tau
	if ess < 1 {
		ess = 1
	}
	if math.IsNaN(ess) {
		return 0, fmt.Errorf("stats: effective sample size undefined")
	}
	return ess, nil
}

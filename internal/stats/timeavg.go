package stats

import (
	"fmt"
	"math"
)

// TimeAverage accumulates the time-weighted average of a
// piecewise-constant sample path, such as the number of packets in a
// queue over simulated time. Record the path by calling Observe with
// the value that held *since the previous observation time*.
//
// The zero value is ready to use and starts at time 0.
type TimeAverage struct {
	lastTime  float64
	weighted  float64 // integral of value dt
	total     float64 // total elapsed time
	started   bool
	startTime float64
}

// NewTimeAverage returns an accumulator whose clock starts at start.
func NewTimeAverage(start float64) *TimeAverage {
	return &TimeAverage{lastTime: start, started: true, startTime: start}
}

// Observe records that the path held value from the previous
// observation time until now. Calls must have non-decreasing now; a
// regression returns an error and leaves the accumulator unchanged.
func (t *TimeAverage) Observe(value, now float64) error {
	if !t.started {
		t.started = true
		t.lastTime = 0
	}
	dt := now - t.lastTime
	if dt < 0 {
		return fmt.Errorf("stats: time went backwards (%.6g -> %.6g)", t.lastTime, now)
	}
	t.weighted += value * dt
	t.total += dt
	t.lastTime = now
	return nil
}

// Reset discards accumulated history and restarts the clock at now.
// Use it to drop a warmup period.
func (t *TimeAverage) Reset(now float64) {
	t.lastTime = now
	t.startTime = now
	t.weighted = 0
	t.total = 0
	t.started = true
}

// Value returns the time-weighted average so far, or NaN if no time has
// elapsed.
func (t *TimeAverage) Value() float64 {
	if t.total == 0 {
		return math.NaN()
	}
	return t.weighted / t.total
}

// Elapsed returns the total time accumulated since the last Reset.
func (t *TimeAverage) Elapsed() float64 { return t.total }

// Histogram is a fixed-bin histogram over [lo, hi). Values outside the
// range are counted in the under/overflow bins.
type Histogram struct {
	Lo, Hi    float64
	Bins      []int
	Underflow int
	Overflow  int
	count     int
}

// NewHistogram creates a histogram with n bins spanning [lo, hi).
func NewHistogram(lo, hi float64, n int) (*Histogram, error) {
	if n <= 0 {
		return nil, fmt.Errorf("stats: histogram needs positive bin count, got %d", n)
	}
	if !(lo < hi) {
		return nil, fmt.Errorf("stats: histogram range [%v,%v) is empty", lo, hi)
	}
	return &Histogram{Lo: lo, Hi: hi, Bins: make([]int, n)}, nil
}

// Add records one observation.
func (h *Histogram) Add(x float64) {
	h.count++
	switch {
	case x < h.Lo:
		h.Underflow++
	case x >= h.Hi:
		h.Overflow++
	default:
		i := int((x - h.Lo) / (h.Hi - h.Lo) * float64(len(h.Bins)))
		if i == len(h.Bins) { // guard against floating-point edge
			i--
		}
		h.Bins[i]++
	}
}

// Count returns the total number of observations, including under- and
// overflow.
func (h *Histogram) Count() int { return h.count }

// BinCenter returns the midpoint of bin i.
func (h *Histogram) BinCenter(i int) float64 {
	w := (h.Hi - h.Lo) / float64(len(h.Bins))
	return h.Lo + (float64(i)+0.5)*w
}

// Fractions returns the in-range bin counts normalized by the total
// observation count; it returns nil when the histogram is empty.
func (h *Histogram) Fractions() []float64 {
	if h.count == 0 {
		return nil
	}
	fs := make([]float64, len(h.Bins))
	for i, c := range h.Bins {
		fs[i] = float64(c) / float64(h.count)
	}
	return fs
}

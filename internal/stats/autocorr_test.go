package stats

import (
	"math"
	"math/rand"
	"testing"
)

func TestAutocorrelationLagZero(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	rho, err := Autocorrelation(xs, 0)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(rho-1) > 1e-12 {
		t.Errorf("ρ(0) = %v, want 1", rho)
	}
}

func TestAutocorrelationAlternating(t *testing.T) {
	// A perfectly alternating series has ρ(1) ≈ −1.
	xs := make([]float64, 100)
	for i := range xs {
		if i%2 == 0 {
			xs[i] = 1
		} else {
			xs[i] = -1
		}
	}
	rho, err := Autocorrelation(xs, 1)
	if err != nil {
		t.Fatal(err)
	}
	if rho > -0.9 {
		t.Errorf("ρ(1) = %v, want ≈ -1", rho)
	}
}

func TestAutocorrelationWhiteNoise(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	xs := make([]float64, 10000)
	for i := range xs {
		xs[i] = rng.NormFloat64()
	}
	rho, err := Autocorrelation(xs, 1)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(rho) > 0.05 {
		t.Errorf("white-noise ρ(1) = %v, want ≈ 0", rho)
	}
}

func TestAutocorrelationAR1(t *testing.T) {
	// AR(1) with coefficient φ has ρ(k) = φ^k.
	const phi = 0.7
	rng := rand.New(rand.NewSource(5))
	xs := make([]float64, 50000)
	prev := 0.0
	for i := range xs {
		prev = phi*prev + rng.NormFloat64()
		xs[i] = prev
	}
	for _, k := range []int{1, 2, 3} {
		rho, err := Autocorrelation(xs, k)
		if err != nil {
			t.Fatal(err)
		}
		want := math.Pow(phi, float64(k))
		if math.Abs(rho-want) > 0.05 {
			t.Errorf("ρ(%d) = %v, want ≈ %v", k, rho, want)
		}
	}
}

func TestAutocorrelationErrors(t *testing.T) {
	if _, err := Autocorrelation([]float64{1, 2}, -1); err == nil {
		t.Error("want error for negative lag")
	}
	if _, err := Autocorrelation([]float64{1, 2}, 5); err == nil {
		t.Error("want error for lag out of range")
	}
	if _, err := Autocorrelation([]float64{1}, 0); err == nil {
		t.Error("want error for a single sample")
	}
	if _, err := Autocorrelation([]float64{3, 3, 3}, 1); err == nil {
		t.Error("want error for a constant series")
	}
}

func TestIntegratedAutocorrTimeAR1(t *testing.T) {
	// AR(1): τ = 1 + 2·Σφ^k = 1 + 2φ/(1−φ) = (1+φ)/(1−φ).
	const phi = 0.6
	rng := rand.New(rand.NewSource(7))
	xs := make([]float64, 100000)
	prev := 0.0
	for i := range xs {
		prev = phi*prev + rng.NormFloat64()
		xs[i] = prev
	}
	tau, err := IntegratedAutocorrTime(xs)
	if err != nil {
		t.Fatal(err)
	}
	want := (1 + phi) / (1 - phi) // = 4
	if math.Abs(tau-want) > 0.5 {
		t.Errorf("τ = %v, want ≈ %v", tau, want)
	}
	ess, err := EffectiveSampleSize(xs)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(ess-float64(len(xs))/want) > 0.2*float64(len(xs))/want {
		t.Errorf("ESS = %v, want ≈ %v", ess, float64(len(xs))/want)
	}
}

func TestEffectiveSampleSizeIndependent(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	xs := make([]float64, 20000)
	for i := range xs {
		xs[i] = rng.Float64()
	}
	ess, err := EffectiveSampleSize(xs)
	if err != nil {
		t.Fatal(err)
	}
	if ess < 0.8*float64(len(xs)) {
		t.Errorf("independent ESS = %v, want ≈ %d", ess, len(xs))
	}
}

func TestIntegratedAutocorrTimeErrors(t *testing.T) {
	if _, err := IntegratedAutocorrTime([]float64{1, 2}); err == nil {
		t.Error("want error for too-short series")
	}
	if _, err := EffectiveSampleSize([]float64{1}); err == nil {
		t.Error("want error for too-short series")
	}
}

package stats

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestMeanBasic(t *testing.T) {
	cases := []struct {
		xs   []float64
		want float64
	}{
		{nil, 0},
		{[]float64{5}, 5},
		{[]float64{1, 2, 3}, 2},
		{[]float64{-1, 1}, 0},
		{[]float64{2, 2, 2, 2}, 2},
	}
	for _, c := range cases {
		if got := Mean(c.xs); math.Abs(got-c.want) > 1e-12 {
			t.Errorf("Mean(%v) = %v, want %v", c.xs, got, c.want)
		}
	}
}

func TestVarianceKnown(t *testing.T) {
	// Sample variance of {2,4,4,4,5,5,7,9} is 32/7.
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	want := 32.0 / 7.0
	if got := Variance(xs); math.Abs(got-want) > 1e-12 {
		t.Errorf("Variance = %v, want %v", got, want)
	}
}

func TestVarianceDegenerate(t *testing.T) {
	if v := Variance(nil); v != 0 {
		t.Errorf("Variance(nil) = %v, want 0", v)
	}
	if v := Variance([]float64{3}); v != 0 {
		t.Errorf("Variance(single) = %v, want 0", v)
	}
}

func TestMinMax(t *testing.T) {
	xs := []float64{3, -1, 4, 1, 5}
	if Min(xs) != -1 {
		t.Errorf("Min = %v, want -1", Min(xs))
	}
	if Max(xs) != 5 {
		t.Errorf("Max = %v, want 5", Max(xs))
	}
	if !math.IsInf(Min(nil), 1) || !math.IsInf(Max(nil), -1) {
		t.Error("empty Min/Max should be +Inf/-Inf")
	}
}

func TestSummarizeEmpty(t *testing.T) {
	if _, err := Summarize(nil); err != ErrEmpty {
		t.Errorf("Summarize(nil) error = %v, want ErrEmpty", err)
	}
}

func TestSummarizeString(t *testing.T) {
	s, err := Summarize([]float64{1, 2, 3})
	if err != nil {
		t.Fatal(err)
	}
	if s.N != 3 || s.Mean != 2 || s.Min != 1 || s.Max != 3 {
		t.Errorf("unexpected summary %+v", s)
	}
	if s.String() == "" {
		t.Error("String should be non-empty")
	}
}

func TestQuantile(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	for _, c := range []struct{ q, want float64 }{
		{0, 1}, {0.25, 2}, {0.5, 3}, {0.75, 4}, {1, 5},
	} {
		got, err := Quantile(xs, c.q)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(got-c.want) > 1e-12 {
			t.Errorf("Quantile(%v) = %v, want %v", c.q, got, c.want)
		}
	}
}

func TestQuantileInterpolates(t *testing.T) {
	got, err := Quantile([]float64{0, 10}, 0.3)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got-3) > 1e-12 {
		t.Errorf("Quantile(0.3) = %v, want 3", got)
	}
}

func TestQuantileErrors(t *testing.T) {
	if _, err := Quantile(nil, 0.5); err != ErrEmpty {
		t.Errorf("want ErrEmpty, got %v", err)
	}
	if _, err := Quantile([]float64{1}, -0.1); err == nil {
		t.Error("want error for q<0")
	}
	if _, err := Quantile([]float64{1}, 1.1); err == nil {
		t.Error("want error for q>1")
	}
}

func TestQuantileDoesNotMutate(t *testing.T) {
	xs := []float64{3, 1, 2}
	if _, err := Median(xs); err != nil {
		t.Fatal(err)
	}
	if xs[0] != 3 || xs[1] != 1 || xs[2] != 2 {
		t.Errorf("input mutated: %v", xs)
	}
}

func TestMeanCI(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	xs := make([]float64, 2000)
	for i := range xs {
		xs[i] = 5 + rng.NormFloat64()
	}
	ci, err := MeanCI(xs, 0.95)
	if err != nil {
		t.Fatal(err)
	}
	if !ci.Contains(5) {
		t.Errorf("95%% CI %v should contain the true mean 5", ci)
	}
	if ci.HalfWide <= 0 {
		t.Errorf("half width should be positive, got %v", ci.HalfWide)
	}
	if ci.Lo() >= ci.Hi() {
		t.Errorf("degenerate interval [%v,%v]", ci.Lo(), ci.Hi())
	}
}

func TestMeanCIErrors(t *testing.T) {
	if _, err := MeanCI([]float64{1}, 0.95); err == nil {
		t.Error("want error for single sample")
	}
	if _, err := MeanCI([]float64{1, 2}, 0.5); err == nil {
		t.Error("want error for unsupported level")
	}
}

func TestBatchMeans(t *testing.T) {
	xs := []float64{1, 1, 2, 2, 3, 3, 4} // remainder 4 discarded with 3 batches
	means, err := BatchMeans(xs, 3)
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{1, 2, 3}
	for i := range want {
		if math.Abs(means[i]-want[i]) > 1e-12 {
			t.Errorf("batch %d mean = %v, want %v", i, means[i], want[i])
		}
	}
}

func TestBatchMeansErrors(t *testing.T) {
	if _, err := BatchMeans([]float64{1}, 0); err == nil {
		t.Error("want error for nbatch<=0")
	}
	if _, err := BatchMeans([]float64{1}, 2); err == nil {
		t.Error("want error when samples cannot fill batches")
	}
}

func TestBatchMeanCI(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	xs := make([]float64, 10000)
	// AR(1)-ish correlated series around 3.
	prev := 3.0
	for i := range xs {
		prev = 3 + 0.8*(prev-3) + rng.NormFloat64()
		xs[i] = prev
	}
	ci, err := BatchMeanCI(xs, 20, 0.99)
	if err != nil {
		t.Fatal(err)
	}
	if !ci.Contains(3) {
		t.Errorf("99%% batch-means CI %v should contain 3", ci)
	}
}

func TestRelativeError(t *testing.T) {
	if got := RelativeError(11, 10, 1e-9); math.Abs(got-0.1) > 1e-12 {
		t.Errorf("RelativeError = %v, want 0.1", got)
	}
	// Floor prevents division blowup near zero.
	if got := RelativeError(0.5, 0, 1); got != 0.5 {
		t.Errorf("RelativeError with floor = %v, want 0.5", got)
	}
}

func TestTimeAverageConstant(t *testing.T) {
	ta := NewTimeAverage(0)
	if err := ta.Observe(4, 2); err != nil {
		t.Fatal(err)
	}
	if err := ta.Observe(4, 5); err != nil {
		t.Fatal(err)
	}
	if got := ta.Value(); math.Abs(got-4) > 1e-12 {
		t.Errorf("constant path average = %v, want 4", got)
	}
	if ta.Elapsed() != 5 {
		t.Errorf("elapsed = %v, want 5", ta.Elapsed())
	}
}

func TestTimeAverageSteps(t *testing.T) {
	// Value 0 on [0,1), 10 on [1,3): average = 20/3.
	ta := NewTimeAverage(0)
	if err := ta.Observe(0, 1); err != nil {
		t.Fatal(err)
	}
	if err := ta.Observe(10, 3); err != nil {
		t.Fatal(err)
	}
	want := 20.0 / 3.0
	if got := ta.Value(); math.Abs(got-want) > 1e-12 {
		t.Errorf("step path average = %v, want %v", got, want)
	}
}

func TestTimeAverageBackwards(t *testing.T) {
	ta := NewTimeAverage(5)
	if err := ta.Observe(1, 4); err == nil {
		t.Error("want error for backwards time")
	}
}

func TestTimeAverageReset(t *testing.T) {
	ta := NewTimeAverage(0)
	_ = ta.Observe(100, 10) // warmup to be discarded
	ta.Reset(10)
	if !math.IsNaN(ta.Value()) {
		t.Errorf("after reset, Value = %v, want NaN", ta.Value())
	}
	_ = ta.Observe(2, 11)
	if got := ta.Value(); math.Abs(got-2) > 1e-12 {
		t.Errorf("post-reset average = %v, want 2", got)
	}
}

func TestTimeAverageZeroValue(t *testing.T) {
	var ta TimeAverage
	if err := ta.Observe(3, 1); err != nil {
		t.Fatal(err)
	}
	if got := ta.Value(); math.Abs(got-3) > 1e-12 {
		t.Errorf("zero-value accumulator average = %v, want 3", got)
	}
}

func TestHistogram(t *testing.T) {
	h, err := NewHistogram(0, 10, 5)
	if err != nil {
		t.Fatal(err)
	}
	for _, x := range []float64{-1, 0, 1.9, 2, 9.99, 10, 42} {
		h.Add(x)
	}
	if h.Underflow != 1 {
		t.Errorf("underflow = %d, want 1", h.Underflow)
	}
	if h.Overflow != 2 {
		t.Errorf("overflow = %d, want 2", h.Overflow)
	}
	if h.Bins[0] != 2 { // 0 and 1.9
		t.Errorf("bin0 = %d, want 2", h.Bins[0])
	}
	if h.Bins[1] != 1 { // 2
		t.Errorf("bin1 = %d, want 1", h.Bins[1])
	}
	if h.Bins[4] != 1 { // 9.99
		t.Errorf("bin4 = %d, want 1", h.Bins[4])
	}
	if h.Count() != 7 {
		t.Errorf("count = %d, want 7", h.Count())
	}
}

func TestHistogramErrors(t *testing.T) {
	if _, err := NewHistogram(0, 1, 0); err == nil {
		t.Error("want error for zero bins")
	}
	if _, err := NewHistogram(1, 1, 3); err == nil {
		t.Error("want error for empty range")
	}
}

func TestHistogramBinCenter(t *testing.T) {
	h, _ := NewHistogram(0, 10, 5)
	if got := h.BinCenter(0); math.Abs(got-1) > 1e-12 {
		t.Errorf("BinCenter(0) = %v, want 1", got)
	}
	if got := h.BinCenter(4); math.Abs(got-9) > 1e-12 {
		t.Errorf("BinCenter(4) = %v, want 9", got)
	}
}

func TestHistogramFractions(t *testing.T) {
	h, _ := NewHistogram(0, 4, 2)
	if h.Fractions() != nil {
		t.Error("empty histogram should yield nil fractions")
	}
	h.Add(1)
	h.Add(1)
	h.Add(3)
	h.Add(-5)
	fs := h.Fractions()
	if math.Abs(fs[0]-0.5) > 1e-12 || math.Abs(fs[1]-0.25) > 1e-12 {
		t.Errorf("fractions = %v", fs)
	}
}

// Property: the mean always lies within [min, max].
func TestPropMeanBounded(t *testing.T) {
	f := func(xs []float64) bool {
		clean := xs[:0]
		for _, x := range xs {
			if !math.IsNaN(x) && !math.IsInf(x, 0) && math.Abs(x) < 1e100 {
				clean = append(clean, x)
			}
		}
		if len(clean) == 0 {
			return true
		}
		m := Mean(clean)
		return m >= Min(clean)-1e-9*math.Abs(Min(clean))-1e-9 &&
			m <= Max(clean)+1e-9*math.Abs(Max(clean))+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: shifting a sample shifts the mean and preserves variance.
func TestPropShiftInvariance(t *testing.T) {
	f := func(seed int64, shift float64) bool {
		if math.IsNaN(shift) || math.Abs(shift) > 1e6 {
			return true
		}
		rng := rand.New(rand.NewSource(seed))
		xs := make([]float64, 50)
		ys := make([]float64, 50)
		for i := range xs {
			xs[i] = rng.Float64() * 100
			ys[i] = xs[i] + shift
		}
		dm := Mean(ys) - Mean(xs)
		dv := Variance(ys) - Variance(xs)
		return math.Abs(dm-shift) < 1e-6 && math.Abs(dv) < 1e-6
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: quantile is monotone in q.
func TestPropQuantileMonotone(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		xs := make([]float64, 30)
		for i := range xs {
			xs[i] = rng.NormFloat64()
		}
		prev := math.Inf(-1)
		for q := 0.0; q <= 1.0; q += 0.1 {
			v, err := Quantile(xs, q)
			if err != nil || v < prev-1e-12 {
				return false
			}
			prev = v
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Package stats provides small statistical utilities used by the
// simulation and experiment harnesses: summary statistics, confidence
// intervals via the batch-means method, histograms, time-weighted
// averages for piecewise-constant sample paths, and autocorrelation /
// effective-sample-size estimators for judging how much information a
// correlated simulation output series actually carries.
//
// The package is deliberately free of any model knowledge; it operates
// on plain float64 slices so that it can be reused by the event-driven
// simulator, the analytic experiments, and the tests that cross-check
// them.
package stats

import (
	"errors"
	"fmt"
	"math"
	"sort"
)

// ErrEmpty is returned by functions that require at least one sample.
var ErrEmpty = errors.New("stats: empty sample")

// Mean returns the arithmetic mean of xs. It returns 0 for an empty
// slice; callers that must distinguish use Summarize.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// Variance returns the unbiased sample variance of xs (n-1 in the
// denominator). Slices with fewer than two elements yield 0.
func Variance(xs []float64) float64 {
	if len(xs) < 2 {
		return 0
	}
	m := Mean(xs)
	s := 0.0
	for _, x := range xs {
		d := x - m
		s += d * d
	}
	return s / float64(len(xs)-1)
}

// StdDev returns the sample standard deviation of xs.
func StdDev(xs []float64) float64 { return math.Sqrt(Variance(xs)) }

// Min returns the smallest element of xs, or +Inf for an empty slice.
func Min(xs []float64) float64 {
	m := math.Inf(1)
	for _, x := range xs {
		if x < m {
			m = x
		}
	}
	return m
}

// Max returns the largest element of xs, or -Inf for an empty slice.
func Max(xs []float64) float64 {
	m := math.Inf(-1)
	for _, x := range xs {
		if x > m {
			m = x
		}
	}
	return m
}

// Summary holds basic summary statistics of a sample.
type Summary struct {
	N        int
	Mean     float64
	Variance float64
	StdDev   float64
	Min      float64
	Max      float64
}

// Summarize computes a Summary of xs. It returns ErrEmpty when xs is
// empty.
func Summarize(xs []float64) (Summary, error) {
	if len(xs) == 0 {
		return Summary{}, ErrEmpty
	}
	v := Variance(xs)
	return Summary{
		N:        len(xs),
		Mean:     Mean(xs),
		Variance: v,
		StdDev:   math.Sqrt(v),
		Min:      Min(xs),
		Max:      Max(xs),
	}, nil
}

// String renders the summary in a compact single-line form.
func (s Summary) String() string {
	return fmt.Sprintf("n=%d mean=%.6g sd=%.4g min=%.6g max=%.6g",
		s.N, s.Mean, s.StdDev, s.Min, s.Max)
}

// Quantile returns the q-quantile (0 <= q <= 1) of xs using linear
// interpolation between order statistics. It returns ErrEmpty when xs
// is empty and an error when q is outside [0, 1]. xs is not modified.
func Quantile(xs []float64, q float64) (float64, error) {
	if len(xs) == 0 {
		return 0, ErrEmpty
	}
	if q < 0 || q > 1 || math.IsNaN(q) {
		return 0, fmt.Errorf("stats: quantile %v outside [0,1]", q)
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	if len(sorted) == 1 {
		return sorted[0], nil
	}
	pos := q * float64(len(sorted)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return sorted[lo], nil
	}
	frac := pos - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac, nil
}

// Median returns the 0.5 quantile of xs.
func Median(xs []float64) (float64, error) { return Quantile(xs, 0.5) }

// CI holds a symmetric confidence interval around a point estimate.
type CI struct {
	Mean     float64
	HalfWide float64 // half-width of the interval
	Level    float64 // e.g. 0.95
}

// Lo returns the lower endpoint of the interval.
func (c CI) Lo() float64 { return c.Mean - c.HalfWide }

// Hi returns the upper endpoint of the interval.
func (c CI) Hi() float64 { return c.Mean + c.HalfWide }

// Contains reports whether x lies inside the interval (inclusive).
func (c CI) Contains(x float64) bool { return x >= c.Lo() && x <= c.Hi() }

// String renders the interval as "mean ± half (level%)".
func (c CI) String() string {
	return fmt.Sprintf("%.6g ± %.3g (%.0f%%)", c.Mean, c.HalfWide, c.Level*100)
}

// MeanCI returns a confidence interval for the mean of xs, treating the
// samples as independent and using a normal critical value. level must
// be one of the supported levels (0.90, 0.95, 0.99).
func MeanCI(xs []float64, level float64) (CI, error) {
	if len(xs) < 2 {
		return CI{}, fmt.Errorf("stats: need at least 2 samples for a CI, have %d", len(xs))
	}
	z, err := zCritical(level)
	if err != nil {
		return CI{}, err
	}
	m := Mean(xs)
	se := math.Sqrt(Variance(xs) / float64(len(xs)))
	return CI{Mean: m, HalfWide: z * se, Level: level}, nil
}

// zCritical returns the two-sided normal critical value for the given
// confidence level.
func zCritical(level float64) (float64, error) {
	switch level {
	case 0.90:
		return 1.6449, nil
	case 0.95:
		return 1.9600, nil
	case 0.99:
		return 2.5758, nil
	}
	return 0, fmt.Errorf("stats: unsupported confidence level %v (use 0.90, 0.95 or 0.99)", level)
}

// BatchMeans partitions xs into nbatch equal-size consecutive batches
// (discarding any remainder at the tail) and returns the batch means.
// It is the standard variance-reduction device for correlated
// steady-state simulation output.
func BatchMeans(xs []float64, nbatch int) ([]float64, error) {
	if nbatch <= 0 {
		return nil, fmt.Errorf("stats: nbatch must be positive, got %d", nbatch)
	}
	size := len(xs) / nbatch
	if size == 0 {
		return nil, fmt.Errorf("stats: %d samples cannot fill %d batches", len(xs), nbatch)
	}
	means := make([]float64, nbatch)
	for b := 0; b < nbatch; b++ {
		means[b] = Mean(xs[b*size : (b+1)*size])
	}
	return means, nil
}

// BatchMeanCI computes a confidence interval for the steady-state mean
// of a correlated series via the batch-means method.
func BatchMeanCI(xs []float64, nbatch int, level float64) (CI, error) {
	means, err := BatchMeans(xs, nbatch)
	if err != nil {
		return CI{}, err
	}
	return MeanCI(means, level)
}

// RelativeError returns |got-want| / max(|want|, floor). The floor
// guards against division by values near zero.
func RelativeError(got, want, floor float64) float64 {
	den := math.Abs(want)
	if den < floor {
		den = floor
	}
	return math.Abs(got-want) / den
}

package core

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"github.com/nettheory/feedbackflow/internal/control"
	"github.com/nettheory/feedbackflow/internal/queueing"
	"github.com/nettheory/feedbackflow/internal/signal"
	"github.com/nettheory/feedbackflow/internal/topology"
)

func singleGatewaySystem(t *testing.T, n int, mu float64, disc queueing.Discipline, style signal.Style, law control.Law) *System {
	t.Helper()
	net, err := topology.SingleGateway(n, mu, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	sys, err := NewSystem(net, disc, style, signal.Rational{}, control.Uniform(law, n))
	if err != nil {
		t.Fatal(err)
	}
	return sys
}

func TestNewSystemValidation(t *testing.T) {
	net, err := topology.SingleGateway(2, 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	law := control.AdditiveTSI{Eta: 0.1, BSS: 0.5}
	if _, err := NewSystem(nil, queueing.FIFO{}, signal.Aggregate, signal.Rational{}, control.Uniform(law, 2)); err == nil {
		t.Error("want error for nil network")
	}
	if _, err := NewSystem(net, nil, signal.Aggregate, signal.Rational{}, control.Uniform(law, 2)); err == nil {
		t.Error("want error for nil discipline")
	}
	if _, err := NewSystem(net, queueing.FIFO{}, signal.Aggregate, nil, control.Uniform(law, 2)); err == nil {
		t.Error("want error for nil signal func")
	}
	if _, err := NewSystem(net, queueing.FIFO{}, signal.Aggregate, signal.Rational{}, control.Uniform(law, 1)); err == nil {
		t.Error("want error for law count mismatch")
	}
	if _, err := NewSystem(net, queueing.FIFO{}, signal.Aggregate, signal.Rational{}, []control.Law{law, nil}); err == nil {
		t.Error("want error for nil law")
	}
	if _, err := NewSystem(net, queueing.FIFO{}, signal.Style(7), signal.Rational{}, control.Uniform(law, 2)); err == nil {
		t.Error("want error for bad style")
	}
}

func TestAccessors(t *testing.T) {
	law := control.AdditiveTSI{Eta: 0.1, BSS: 0.5}
	sys := singleGatewaySystem(t, 2, 1, queueing.FIFO{}, signal.Aggregate, law)
	if sys.Network().NumConnections() != 2 {
		t.Error("Network accessor broken")
	}
	if sys.Discipline().Name() != "FIFO" {
		t.Error("Discipline accessor broken")
	}
	if sys.Style() != signal.Aggregate {
		t.Error("Style accessor broken")
	}
	if sys.SignalFunc().Name() != (signal.Rational{}).Name() {
		t.Error("SignalFunc accessor broken")
	}
	if sys.Law(1).Name() != law.Name() {
		t.Error("Law accessor broken")
	}
}

func TestObserveSingleConnection(t *testing.T) {
	law := control.AdditiveTSI{Eta: 0.1, BSS: 0.5}
	sys := singleGatewaySystem(t, 1, 1, queueing.FIFO{}, signal.Aggregate, law)
	obs, err := sys.Observe([]float64{0.5})
	if err != nil {
		t.Fatal(err)
	}
	// Q = g(0.5) = 1; with the rational signal b = ρ = 0.5.
	if math.Abs(obs.Signals[0]-0.5) > 1e-12 {
		t.Errorf("b = %v, want 0.5", obs.Signals[0])
	}
	// d = latency + 1/(μ-λ) = 0.1 + 2.
	if math.Abs(obs.Delays[0]-2.1) > 1e-12 {
		t.Errorf("d = %v, want 2.1", obs.Delays[0])
	}
	if len(obs.Bottlenecks[0]) != 1 || obs.Bottlenecks[0][0] != 0 {
		t.Errorf("bottlenecks = %v", obs.Bottlenecks[0])
	}
	if math.Abs(obs.Queues[0][0]-1) > 1e-12 {
		t.Errorf("Q = %v, want 1", obs.Queues[0][0])
	}
}

func TestObserveLengthError(t *testing.T) {
	law := control.AdditiveTSI{Eta: 0.1, BSS: 0.5}
	sys := singleGatewaySystem(t, 2, 1, queueing.FIFO{}, signal.Aggregate, law)
	if _, err := sys.Observe([]float64{0.1}); err == nil {
		t.Error("want length error")
	}
	if _, err := sys.Step([]float64{0.1, -1}); err == nil {
		t.Error("want rate validation error")
	}
	if _, err := sys.Run([]float64{0.1}, RunOptions{}); err == nil {
		t.Error("want length error from Run")
	}
}

func TestRunConvergesSingleConnection(t *testing.T) {
	// With the rational signal b = ρ, so f = η(b_SS − r/μ); steady
	// state at r = b_SS·μ = 0.5.
	law := control.AdditiveTSI{Eta: 0.3, BSS: 0.5}
	sys := singleGatewaySystem(t, 1, 1, queueing.FIFO{}, signal.Aggregate, law)
	res, err := sys.Run([]float64{0.01}, RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Fatal("did not converge")
	}
	if math.Abs(res.Rates[0]-0.5) > 1e-6 {
		t.Errorf("steady rate = %v, want 0.5", res.Rates[0])
	}
	resid, err := sys.Residual(res.Rates)
	if err != nil {
		t.Fatal(err)
	}
	if resid > 1e-6 {
		t.Errorf("residual = %v", resid)
	}
}

func TestRunAggregateManifoldPreservesSum(t *testing.T) {
	// Aggregate feedback, N=3: steady states satisfy Σr = b_SS·μ but
	// individual rates depend on the start (Theorem 2's manifold).
	law := control.AdditiveTSI{Eta: 0.2, BSS: 0.6}
	sys := singleGatewaySystem(t, 3, 1, queueing.FIFO{}, signal.Aggregate, law)
	starts := [][]float64{
		{0.01, 0.01, 0.01},
		{0.3, 0.1, 0.01},
		{0.05, 0.25, 0.15},
	}
	finals := make([][]float64, len(starts))
	for k, r0 := range starts {
		res, err := sys.Run(r0, RunOptions{})
		if err != nil {
			t.Fatal(err)
		}
		if !res.Converged {
			t.Fatalf("start %d did not converge", k)
		}
		sum := 0.0
		for _, ri := range res.Rates {
			sum += ri
		}
		if math.Abs(sum-0.6) > 1e-6 {
			t.Errorf("start %d: Σr = %v, want 0.6", k, sum)
		}
		finals[k] = res.Rates
	}
	// The additive aggregate law moves every rate by the same amount,
	// so initial differences persist: starts 0 and 1 must land on
	// different points of the manifold.
	if math.Abs(finals[0][0]-finals[1][0]) < 1e-3 {
		t.Errorf("distinct starts converged to the same point: %v vs %v", finals[0], finals[1])
	}
}

func TestRunIndividualFairShareIsFair(t *testing.T) {
	// Individual feedback: the unique steady state is the fair one,
	// r_i = b_SS·μ/N (Theorem 3 + corollary).
	for _, disc := range []queueing.Discipline{queueing.FIFO{}, queueing.FairShare{}} {
		law := control.AdditiveTSI{Eta: 0.15, BSS: 0.6}
		sys := singleGatewaySystem(t, 4, 2, disc, signal.Individual, law)
		res, err := sys.Run([]float64{0.4, 0.1, 0.25, 0.02}, RunOptions{})
		if err != nil {
			t.Fatal(err)
		}
		if !res.Converged {
			t.Fatalf("%s: did not converge", disc.Name())
		}
		want := 0.6 * 2 / 4
		for i, ri := range res.Rates {
			if math.Abs(ri-want) > 1e-5 {
				t.Errorf("%s: r[%d] = %v, want %v", disc.Name(), i, ri, want)
			}
		}
	}
}

func TestRunHeterogeneousAggregateStarves(t *testing.T) {
	// Section 3.4: two aggregate-feedback laws with different b_SS —
	// the smaller-b_SS connection is driven to zero.
	net, err := topology.SingleGateway(2, 1, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	laws := []control.Law{
		control.AdditiveTSI{Eta: 0.2, BSS: 0.7}, // greedier
		control.AdditiveTSI{Eta: 0.2, BSS: 0.4},
	}
	sys, err := NewSystem(net, queueing.FIFO{}, signal.Aggregate, signal.Rational{}, laws)
	if err != nil {
		t.Fatal(err)
	}
	res, err := sys.Run([]float64{0.2, 0.2}, RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Fatal("did not converge")
	}
	if res.Rates[1] > 1e-9 {
		t.Errorf("less greedy connection should starve, got %v", res.Rates[1])
	}
	if math.Abs(res.Rates[0]-0.7) > 1e-6 {
		t.Errorf("greedy connection should take b_SS·μ = 0.7, got %v", res.Rates[0])
	}
	// The truncation makes this a legitimate steady state: residual 0.
	resid, err := sys.Residual(res.Rates)
	if err != nil {
		t.Fatal(err)
	}
	if resid > 1e-6 {
		t.Errorf("starvation steady state residual = %v", resid)
	}
}

func TestRunRecordsTrajectory(t *testing.T) {
	law := control.AdditiveTSI{Eta: 0.3, BSS: 0.5}
	sys := singleGatewaySystem(t, 1, 1, queueing.FIFO{}, signal.Aggregate, law)
	res, err := sys.Run([]float64{0.01}, RunOptions{Record: true, MaxSteps: 50})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Trajectory) != res.Steps+1 {
		t.Errorf("trajectory length %d for %d steps", len(res.Trajectory), res.Steps)
	}
	if res.Trajectory[0][0] != 0.01 {
		t.Error("trajectory should start at r0")
	}
}

func TestRunMaxStepsNotConverged(t *testing.T) {
	// Large gain ⇒ oscillation; Run should stop at MaxSteps and report
	// Converged = false.
	law := control.AdditiveTSI{Eta: 5, BSS: 0.5}
	sys := singleGatewaySystem(t, 4, 1, queueing.FIFO{}, signal.Aggregate, law)
	res, err := sys.Run([]float64{0.1, 0.1, 0.1, 0.1}, RunOptions{MaxSteps: 200})
	if err != nil {
		t.Fatal(err)
	}
	if res.Converged {
		t.Error("unstable gain should not converge")
	}
	if res.Steps != 200 {
		t.Errorf("steps = %d, want 200", res.Steps)
	}
}

func TestStepTruncatesAtZero(t *testing.T) {
	law := control.Custom{Label: "plunge", Fn: func(r, b, d float64) float64 { return -10 }}
	sys := singleGatewaySystem(t, 1, 1, queueing.FIFO{}, signal.Aggregate, law)
	next, err := sys.Step([]float64{0.5})
	if err != nil {
		t.Fatal(err)
	}
	if next[0] != 0 {
		t.Errorf("rate should truncate to 0, got %v", next[0])
	}
}

func TestObserveMultiGatewayBottleneck(t *testing.T) {
	// Two gateways in series with different rates: the slower one is
	// the bottleneck and supplies the combined signal.
	var b topology.Builder
	fast := b.AddGateway("fast", 10, 0)
	slow := b.AddGateway("slow", 1, 0)
	b.AddConnection(fast, slow)
	net, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	law := control.AdditiveTSI{Eta: 0.1, BSS: 0.5}
	sys, err := NewSystem(net, queueing.FIFO{}, signal.Aggregate, signal.Rational{}, control.Uniform(law, 1))
	if err != nil {
		t.Fatal(err)
	}
	obs, err := sys.Observe([]float64{0.5})
	if err != nil {
		t.Fatal(err)
	}
	// b at slow gateway: ρ = 0.5; at fast: ρ = 0.05.
	if math.Abs(obs.Signals[0]-0.5) > 1e-12 {
		t.Errorf("combined signal = %v, want 0.5", obs.Signals[0])
	}
	if len(obs.Bottlenecks[0]) != 1 || obs.Bottlenecks[0][0] != slow {
		t.Errorf("bottlenecks = %v, want [%d]", obs.Bottlenecks[0], slow)
	}
	// Delay adds both sojourn times: 1/(10-0.5) + 1/(1-0.5).
	wantD := 1/9.5 + 2.0
	if math.Abs(obs.Delays[0]-wantD) > 1e-12 {
		t.Errorf("delay = %v, want %v", obs.Delays[0], wantD)
	}
}

func TestObserveOverloadSaturatesSignal(t *testing.T) {
	law := control.AdditiveTSI{Eta: 0.1, BSS: 0.5}
	sys := singleGatewaySystem(t, 1, 1, queueing.FIFO{}, signal.Aggregate, law)
	obs, err := sys.Observe([]float64{2})
	if err != nil {
		t.Fatal(err)
	}
	if obs.Signals[0] != 1 {
		t.Errorf("overload signal = %v, want 1", obs.Signals[0])
	}
	if !math.IsInf(obs.Delays[0], 1) {
		t.Errorf("overload delay = %v, want +Inf", obs.Delays[0])
	}
	// The system must recover: iterating from overload converges.
	res, err := sys.Run([]float64{2}, RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Error("should recover from overload")
	}
}

func TestStepFunc(t *testing.T) {
	law := control.AdditiveTSI{Eta: 0.3, BSS: 0.5}
	sys := singleGatewaySystem(t, 2, 1, queueing.FIFO{}, signal.Aggregate, law)
	f := sys.StepFunc()
	direct, err := sys.Step([]float64{0.1, 0.2})
	if err != nil {
		t.Fatal(err)
	}
	viaFunc := f([]float64{0.1, 0.2})
	for i := range direct {
		if direct[i] != viaFunc[i] {
			t.Errorf("StepFunc diverges from Step at %d", i)
		}
	}
}

// Property (Theorem 1): TSI steady states scale linearly with the
// server rates and are invariant to latencies. Single gateway,
// individual feedback, Fair Share.
func TestPropTimeScaleInvariance(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(5)
		mu := 0.5 + rng.Float64()*4
		bss := 0.2 + 0.6*rng.Float64()
		law := control.AdditiveTSI{Eta: 0.1 * mu, BSS: bss}
		net, err := topology.SingleGateway(n, mu, rng.Float64())
		if err != nil {
			return false
		}
		sys, err := NewSystem(net, queueing.FairShare{}, signal.Individual, signal.Rational{}, control.Uniform(law, n))
		if err != nil {
			return false
		}
		r0 := make([]float64, n)
		for i := range r0 {
			r0[i] = rng.Float64() * mu / float64(n)
		}
		res, err := sys.Run(r0, RunOptions{MaxSteps: 60000, Tol: 1e-11})
		if err != nil || !res.Converged {
			return false
		}
		// Scale servers by c; scale the law gain too (the gain has
		// units of rate, so the scaled system uses the scaled law —
		// what matters is that b_SS is unchanged).
		c := math.Exp(rng.Float64()*6 - 3)
		scaledNet, err := net.ScaleServers(c)
		if err != nil {
			return false
		}
		scaledLaw := control.AdditiveTSI{Eta: law.Eta * c, BSS: bss}
		sys2, err := NewSystem(scaledNet, queueing.FairShare{}, signal.Individual, signal.Rational{}, control.Uniform(scaledLaw, n))
		if err != nil {
			return false
		}
		r02 := make([]float64, n)
		for i := range r0 {
			r02[i] = r0[i] * c
		}
		res2, err := sys2.Run(r02, RunOptions{MaxSteps: 60000, Tol: 1e-11})
		if err != nil || !res2.Converged {
			return false
		}
		for i := range res.Rates {
			if math.Abs(res2.Rates[i]-c*res.Rates[i]) > 1e-5*(1+c*res.Rates[i]) {
				return false
			}
		}
		// Latency invariance.
		lat := make([]float64, net.NumGateways())
		for a := range lat {
			lat[a] = rng.Float64() * 100
		}
		latNet, err := net.WithLatencies(lat)
		if err != nil {
			return false
		}
		sys3, err := NewSystem(latNet, queueing.FairShare{}, signal.Individual, signal.Rational{}, control.Uniform(law, n))
		if err != nil {
			return false
		}
		res3, err := sys3.Run(r0, RunOptions{MaxSteps: 60000, Tol: 1e-11})
		if err != nil || !res3.Converged {
			return false
		}
		for i := range res.Rates {
			if math.Abs(res3.Rates[i]-res.Rates[i]) > 1e-6*(1+res.Rates[i]) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Error(err)
	}
}

// TestSteadyStateLawShapeIndependence checks Theorem 1's sharpest
// consequence: the steady state of a TSI system depends only on the
// target signal b_SS, never on the shape of f. Three very different
// laws with the same b_SS land on identical allocations.
func TestSteadyStateLawShapeIndependence(t *testing.T) {
	const bss = 0.55
	net, err := topology.SingleGateway(3, 1, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	// Note the PowerTSI P=2 law has f'(b_SS) = 0, so its approach is
	// algebraic (error ~ 1/t) rather than geometric: it never meets
	// Run's geometric convergence criterion, but after enough steps it
	// is pinned to the same point. The comparison below therefore uses
	// the final rates, not the Converged flag, for that law.
	type trial struct {
		law           control.Law
		needConverged bool
		tol           float64
	}
	trials := []trial{
		{control.AdditiveTSI{Eta: 0.1, BSS: bss}, true, 1e-5},
		{control.MultiplicativeTSI{Eta: 0.3, BSS: bss}, true, 1e-5},
		{control.PowerTSI{Eta: 0.4, BSS: bss, P: 2}, false, 1e-3},
	}
	var ref []float64
	for _, tr := range trials {
		sys, err := NewSystem(net, queueing.FairShare{}, signal.Individual, signal.Rational{}, control.Uniform(tr.law, 3))
		if err != nil {
			t.Fatal(err)
		}
		res, err := sys.Run([]float64{0.05, 0.15, 0.3}, RunOptions{MaxSteps: 600000, Tol: 1e-12})
		if err != nil {
			t.Fatal(err)
		}
		if tr.needConverged && !res.Converged {
			t.Fatalf("%s did not converge", tr.law.Name())
		}
		if ref == nil {
			ref = res.Rates
			continue
		}
		for i := range ref {
			if math.Abs(res.Rates[i]-ref[i]) > tr.tol {
				t.Errorf("%s: r[%d] = %v differs from reference %v — steady state must not depend on f's shape",
					tr.law.Name(), i, res.Rates[i], ref[i])
			}
		}
	}
}

// Property (Theorem 3): individual feedback steady states are fair —
// every connection sharing a bottleneck gets the same rate — on random
// single-gateway systems under both disciplines.
func TestPropIndividualFeedbackFair(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(5)
		bss := 0.2 + 0.6*rng.Float64()
		law := control.AdditiveTSI{Eta: 0.1, BSS: bss}
		net, err := topology.SingleGateway(n, 1, 0.1)
		if err != nil {
			return false
		}
		disc := queueing.Discipline(queueing.FIFO{})
		if seed%2 == 0 {
			disc = queueing.FairShare{}
		}
		sys, err := NewSystem(net, disc, signal.Individual, signal.Rational{}, control.Uniform(law, n))
		if err != nil {
			return false
		}
		r0 := make([]float64, n)
		for i := range r0 {
			r0[i] = 0.01 + rng.Float64()/float64(n)
		}
		res, err := sys.Run(r0, RunOptions{MaxSteps: 60000})
		if err != nil || !res.Converged {
			return false
		}
		want := bss / float64(n)
		for _, ri := range res.Rates {
			if math.Abs(ri-want) > 1e-5 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

package core

import (
	"math"
	"testing"

	"github.com/nettheory/feedbackflow/internal/control"
	"github.com/nettheory/feedbackflow/internal/obs"
	"github.com/nettheory/feedbackflow/internal/queueing"
	"github.com/nettheory/feedbackflow/internal/signal"
	"github.com/nettheory/feedbackflow/internal/topology"
)

// traceSystem builds the canonical single-gateway system used by the
// tracing tests.
func traceSystem(t *testing.T, n int) *System {
	t.Helper()
	net, err := topology.SingleGateway(n, 1, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	law := control.AdditiveTSI{Eta: 0.1, BSS: 0.5}
	sys, err := NewSystem(net, queueing.FairShare{}, signal.Individual, signal.Rational{}, control.Uniform(law, n))
	if err != nil {
		t.Fatal(err)
	}
	return sys
}

// recordingTracer retains every callback (copying the borrowed
// slices, per the StepTracer contract).
type recordingTracer struct {
	steps     []int
	rs        [][]float64
	residuals []float64
	signals   [][]float64
}

func (rt *recordingTracer) OnStep(step int, r []float64, residual float64, signals []float64) {
	rt.steps = append(rt.steps, step)
	rt.rs = append(rt.rs, append([]float64(nil), r...))
	rt.residuals = append(rt.residuals, residual)
	rt.signals = append(rt.signals, append([]float64(nil), signals...))
}

func traceR0(n int) []float64 {
	r0 := make([]float64, n)
	for i := range r0 {
		r0[i] = 0.02 * float64(i+1)
	}
	return r0
}

// TestRunTracerExactCallbacks asserts the tracer contract: exactly
// Steps callbacks with step indices 0..Steps-1, each seeing the
// pre-update state.
func TestRunTracerExactCallbacks(t *testing.T) {
	const n = 4
	sys := traceSystem(t, n)
	rt := &recordingTracer{}
	res, err := sys.Run(traceR0(n), RunOptions{Tracer: rt, Record: true})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Fatal("run did not converge")
	}
	if len(rt.steps) != res.Steps {
		t.Fatalf("tracer saw %d callbacks for %d steps", len(rt.steps), res.Steps)
	}
	for k, s := range rt.steps {
		if s != k {
			t.Fatalf("callback %d has step index %d (want monotone 0,1,2,...)", k, s)
		}
	}
	// The k'th callback's r must be the k'th trajectory entry (the
	// state *before* update k), and its residual must match Residual
	// at that state.
	for k := range rt.steps {
		for i := range rt.rs[k] {
			if rt.rs[k][i] != res.Trajectory[k][i] {
				t.Fatalf("callback %d saw r=%v, trajectory has %v", k, rt.rs[k], res.Trajectory[k])
			}
		}
	}
	wantResid, err := sys.Residual(res.Trajectory[0])
	if err != nil {
		t.Fatal(err)
	}
	if rt.residuals[0] != wantResid {
		t.Fatalf("callback 0 residual = %v, Residual = %v", rt.residuals[0], wantResid)
	}
	if len(rt.signals[0]) != n {
		t.Fatalf("callback 0 signals have length %d", len(rt.signals[0]))
	}
}

// TestRunTracingBitIdentical asserts that attaching a tracer changes
// nothing about the run's results, bit for bit.
func TestRunTracingBitIdentical(t *testing.T) {
	const n = 5
	sys := traceSystem(t, n)
	plain, err := sys.Run(traceR0(n), RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	traced, err := sys.Run(traceR0(n), RunOptions{Tracer: &recordingTracer{}})
	if err != nil {
		t.Fatal(err)
	}
	if plain.Steps != traced.Steps || plain.Converged != traced.Converged {
		t.Fatalf("steps/converged diverge: %d/%v vs %d/%v",
			plain.Steps, plain.Converged, traced.Steps, traced.Converged)
	}
	for i := range plain.Rates {
		if math.Float64bits(plain.Rates[i]) != math.Float64bits(traced.Rates[i]) {
			t.Fatalf("rate %d diverges: %x vs %x", i,
				math.Float64bits(plain.Rates[i]), math.Float64bits(traced.Rates[i]))
		}
	}
	for i := range plain.Final.Signals {
		if math.Float64bits(plain.Final.Signals[i]) != math.Float64bits(traced.Final.Signals[i]) {
			t.Fatalf("signal %d diverges", i)
		}
	}
}

// TestRunStats sanity-checks the always-on residual telemetry.
func TestRunStats(t *testing.T) {
	const n = 4
	sys := traceSystem(t, n)
	res, err := sys.Run(traceR0(n), RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	st := res.Stats
	if st.Steps != res.Steps {
		t.Fatalf("Stats.Steps = %d, want %d", st.Steps, res.Steps)
	}
	if st.WallTime <= 0 {
		t.Fatalf("WallTime = %v", st.WallTime)
	}
	if st.MinResidual > st.MaxResidual {
		t.Fatalf("min %v > max %v", st.MinResidual, st.MaxResidual)
	}
	if st.FinalResidual < st.MinResidual || st.FinalResidual > st.MaxResidual {
		t.Fatalf("final %v outside [%v, %v]", st.FinalResidual, st.MinResidual, st.MaxResidual)
	}
	if st.InitialResidual < st.MinResidual || st.InitialResidual > st.MaxResidual {
		t.Fatalf("initial %v outside [%v, %v]", st.InitialResidual, st.MinResidual, st.MaxResidual)
	}
	// A converged run must end much closer to steady state than it
	// started.
	if !res.Converged || st.FinalResidual >= st.InitialResidual {
		t.Fatalf("converged=%v initial=%v final=%v", res.Converged, st.InitialResidual, st.FinalResidual)
	}
	wantFinal, err := sys.Residual(res.Rates)
	if err != nil {
		t.Fatal(err)
	}
	if st.FinalResidual != wantFinal {
		t.Fatalf("FinalResidual = %v, Residual(final rates) = %v", st.FinalResidual, wantFinal)
	}
}

// TestRunAsyncTracer asserts the tracer contract holds for the
// asynchronous iteration too, and that tracing does not perturb it.
func TestRunAsyncTracer(t *testing.T) {
	const n = 4
	sys := traceSystem(t, n)
	rt := &recordingTracer{}
	opt := RunOptions{MaxSteps: 4000, Tol: 1e-8}
	tracedOpt := opt
	tracedOpt.Tracer = rt
	traced, err := sys.RunAsync(traceR0(n), tracedOpt, 7)
	if err != nil {
		t.Fatal(err)
	}
	plain, err := sys.RunAsync(traceR0(n), opt, 7)
	if err != nil {
		t.Fatal(err)
	}
	if len(rt.steps) != traced.Steps {
		t.Fatalf("tracer saw %d callbacks for %d async steps", len(rt.steps), traced.Steps)
	}
	for k, s := range rt.steps {
		if s != k {
			t.Fatalf("callback %d has step index %d", k, s)
		}
	}
	if plain.Steps != traced.Steps || plain.Converged != traced.Converged {
		t.Fatalf("tracing perturbed the async run: %d/%v vs %d/%v",
			plain.Steps, plain.Converged, traced.Steps, traced.Converged)
	}
	for i := range plain.Rates {
		if math.Float64bits(plain.Rates[i]) != math.Float64bits(traced.Rates[i]) {
			t.Fatalf("async rate %d diverges", i)
		}
	}
	if traced.Stats.WallTime <= 0 || traced.Stats.Steps != traced.Steps {
		t.Fatalf("async stats not recorded: %+v", traced.Stats)
	}
}

// TestWindowRunTracer asserts the window system honors the tracer and
// records stats.
func TestWindowRunTracer(t *testing.T) {
	const n = 3
	sys := traceSystem(t, n)
	ws, err := NewWindowSystem(sys)
	if err != nil {
		t.Fatal(err)
	}
	rt := &recordingTracer{}
	w0 := []float64{0.5, 0.7, 0.9}
	res, err := ws.Run(w0, RunOptions{MaxSteps: 5000, Tol: 1e-9, Tracer: rt})
	if err != nil {
		t.Fatal(err)
	}
	if len(rt.steps) != res.Steps {
		t.Fatalf("tracer saw %d callbacks for %d window steps", len(rt.steps), res.Steps)
	}
	plain, err := ws.Run(w0, RunOptions{MaxSteps: 5000, Tol: 1e-9})
	if err != nil {
		t.Fatal(err)
	}
	for i := range plain.Windows {
		if math.Float64bits(plain.Windows[i]) != math.Float64bits(res.Windows[i]) {
			t.Fatalf("window %d diverges with tracing", i)
		}
	}
	if res.Stats.Steps != res.Steps || res.Stats.WallTime <= 0 {
		t.Fatalf("window stats not recorded: %+v", res.Stats)
	}
}

// TestRunReport round-trips the builder output at the core level; the
// CLI-level round trip (through a file) lives in cmd/ffc.
func TestRunReport(t *testing.T) {
	const n = 4
	sys := traceSystem(t, n)
	res, err := sys.Run(traceR0(n), RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := sys.Report(res, "trace-test")
	if err != nil {
		t.Fatal(err)
	}
	if rep.Schema != obs.RunReportSchema || rep.Scenario != "trace-test" {
		t.Fatalf("report header: %+v", rep)
	}
	if rep.Steps != res.Steps || rep.Converged != res.Converged {
		t.Fatalf("report outcome: %+v", rep)
	}
	if rep.WallNS <= 0 {
		t.Fatalf("report wall time: %d", rep.WallNS)
	}
	if len(rep.Gateways) != 1 {
		t.Fatalf("report has %d gateways, want 1", len(rep.Gateways))
	}
	g := rep.Gateways[0]
	if g.Connections != n || len(g.Queues) != n {
		t.Fatalf("gateway report: %+v", g)
	}
	if float64(g.Utilization) <= 0 || float64(g.TotalQueue) <= 0 {
		t.Fatalf("gateway stats not populated: %+v", g)
	}
	if _, err := sys.Report(&RunResult{}, "x"); err == nil {
		t.Fatal("report of an incomplete run should error")
	}
}

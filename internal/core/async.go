package core

import (
	"fmt"
	"math"
	"math/rand"
)

// RunAsync iterates the model with asynchronous updates: at each step
// one uniformly random connection applies its rate adjustment while
// all others hold still. This is the relaxation of the paper's
// synchronous-update assumption that Section 2.5 flags as the model's
// most consequential idealization ("the lack of asynchrony certainly
// affects the stability results").
//
// Steps in the result count individual single-connection updates.
// Convergence is declared when the steady-state residual max|f_i|
// drops below opt.Tol (measured once per N updates); note this is a
// residual criterion, not the rate-change criterion used by Run,
// because a single asynchronous update moving one coordinate slightly
// says nothing about the rest.
//
// When opt.Tracer is set it is invoked once per single-connection
// update with the pre-update state, under the same contract as Run
// (see obs.StepTracer). The result's Stats summarize the residual
// trajectory over the states at which residuals were evaluated: every
// step when tracing, otherwise the once-per-N convergence checks plus
// the initial and final states.
//
//ffc:taint sink
func (s *System) RunAsync(r0 []float64, opt RunOptions, seed int64) (*RunResult, error) {
	opt = opt.withDefaults()
	start := opt.Clock()
	n := s.net.NumConnections()
	if len(r0) != n {
		return nil, fmt.Errorf("core: %d initial rates for %d connections", len(r0), n)
	}
	rng := rand.New(rand.NewSource(seed))
	r := append([]float64(nil), r0...)
	ws := s.acquire()
	defer s.release(ws)
	res := &RunResult{}
	if opt.Record {
		res.Trajectory = append(res.Trajectory, append([]float64(nil), r...))
	}
	sampled := false
	for step := 0; step < opt.MaxSteps; step++ {
		i := rng.Intn(n)
		obs, err := ws.Observe(r)
		if err != nil {
			return nil, err
		}
		// The residual at the pre-update state comes almost for free
		// given the observation; compute it when anything consumes it
		// (the tracer every step, the stats on the first step).
		if opt.Tracer != nil || !sampled {
			resid := s.residualFrom(r, obs)
			res.Stats.observe(resid, !sampled)
			sampled = true
			if opt.Tracer != nil {
				opt.Tracer.OnStep(step, r, resid, obs.Signals)
			}
		}
		f := s.laws[i].Adjust(r[i], obs.Signals[i], obs.Delays[i])
		v := r[i] + f
		if v < 0 || math.IsNaN(v) {
			v = 0
		}
		r[i] = v
		res.Steps = step + 1
		if opt.Record {
			res.Trajectory = append(res.Trajectory, append([]float64(nil), r...))
		}
		if (step+1)%n == 0 {
			resid, err := ws.Residual(r)
			if err != nil {
				return nil, err
			}
			res.Stats.observe(resid, !sampled)
			sampled = true
			if resid <= opt.Tol {
				res.Converged = true
				break
			}
		}
	}
	res.Rates = r
	final, err := s.Observe(r)
	if err != nil {
		return nil, err
	}
	res.Final = final
	finalResid := s.residualFrom(r, final)
	res.Stats.observe(finalResid, !sampled)
	res.Stats.FinalResidual = finalResid
	res.Stats.Steps = res.Steps
	res.Stats.WallTime = opt.Clock().Sub(start)
	return res, nil
}

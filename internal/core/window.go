package core

import (
	"fmt"
	"math"
)

// WindowSystem models genuine window-based flow control on top of the
// same network, discipline, and signalling as System. Each source i
// maintains a window w_i of outstanding packets; by Little's law its
// sending rate satisfies the self-consistency condition
//
//	r_i = w_i / d_i(r)
//
// where d_i is the round-trip delay at the network state induced by
// all rates jointly. The adjustment laws act on windows: at each
// synchronous step, w'_i = max(0, w_i + f_i(w_i, b_i, d_i)).
//
// Section 4 of the paper approximates this system by a rate law with
// an η/d increase term; WindowSystem implements the real dynamics so
// that approximation can be tested (experiment E19). In particular the
// latency unfairness of window flow control — equal windows mean rates
// inversely proportional to round-trip delay — emerges here from the
// Little's-law coupling rather than being inserted by hand.
type WindowSystem struct {
	sys *System // supplies Observe; its laws are interpreted on windows
}

// NewWindowSystem assembles a window-based model. The laws' Adjust
// arguments are (w, b, d): current window, combined signal, and
// round-trip delay.
func NewWindowSystem(sys *System) (*WindowSystem, error) {
	if sys == nil {
		return nil, fmt.Errorf("core: nil system")
	}
	return &WindowSystem{sys: sys}, nil
}

// Rates solves the Little's-law fixed point r = w / d(r) for the given
// window vector, starting the damped inner iteration from rGuess
// (pass nil for a cold start). It returns the rates and the
// observation at them.
func (ws *WindowSystem) Rates(w []float64, rGuess []float64) ([]float64, *Observation, error) {
	return ws.rates(w, rGuess, nil)
}

// rates is Rates with an optional effective service-rate override
// (indexed like the topology's gateways), the seam RunOptions.Hook
// uses to model gateway degradation: the override applies to every
// inner fixed-point observation of the call. A nil override is the
// plain path.
func (ws *WindowSystem) rates(w []float64, rGuess, muOverride []float64) ([]float64, *Observation, error) {
	n := ws.sys.net.NumConnections()
	if len(w) != n {
		return nil, nil, fmt.Errorf("core: %d windows for %d connections", len(w), n)
	}
	for i, wi := range w {
		if wi < 0 || math.IsNaN(wi) || math.IsInf(wi, 0) {
			return nil, nil, fmt.Errorf("core: invalid window w[%d] = %v", i, wi)
		}
	}
	r := make([]float64, n)
	if rGuess != nil {
		if len(rGuess) != n {
			return nil, nil, fmt.Errorf("core: %d rate guesses for %d connections", len(rGuess), n)
		}
		copy(r, rGuess)
	} else {
		// Cold start: spread a modest total load.
		for i := range r {
			if w[i] > 0 {
				r[i] = 0.1 / float64(n)
			}
		}
	}
	const (
		damping = 0.5
		maxIter = 20000
		tol     = 1e-12
	)
	// The inner iteration can run for thousands of rounds; a dedicated
	// workspace makes each round allocation-free. The workspace is
	// created per call — not pooled — because its final Observation is
	// returned to (and retained by) the caller.
	work := ws.sys.NewWorkspace()
	work.muOverride = muOverride
	var obs *Observation
	var err error
	for it := 0; it < maxIter; it++ {
		obs, err = work.Observe(r)
		if err != nil {
			return nil, nil, err
		}
		maxChange := 0.0
		for i := range r {
			target := 0.0
			if w[i] > 0 && !math.IsInf(obs.Delays[i], 1) {
				target = w[i] / obs.Delays[i]
			}
			next := (1-damping)*r[i] + damping*target
			if c := math.Abs(next - r[i]); c > maxChange {
				maxChange = c
			}
			r[i] = next
		}
		if maxChange <= tol*(1+maxAbs(r)) {
			return r, obs, nil
		}
	}
	return nil, nil, fmt.Errorf("core: Little's-law fixed point did not converge (windows %v)", w)
}

func maxAbs(v []float64) float64 {
	m := 0.0
	for _, x := range v {
		if a := math.Abs(x); a > m {
			m = a
		}
	}
	return m
}

// WindowRunResult reports a window-system run.
type WindowRunResult struct {
	// Windows is the final window vector.
	Windows []float64
	// Rates is the Little's-law rate vector at the final windows.
	Rates []float64
	// Steps is the number of window updates applied.
	Steps int
	// Converged reports whether the window change criterion was met.
	Converged bool
	// Final is the observation at the final rates.
	Final *Observation
	// Stats holds the run's telemetry. Residuals here are over window
	// adjustments: max_i |f_i(w_i, b_i, d_i)| with truncated windows
	// (w_i = 0, f_i < 0) contributing zero.
	Stats RunStats
}

// Run iterates the synchronous window adjustment from w0 until the
// windows converge or the step budget is exhausted. A RunOptions
// Tracer receives one callback per window update with the pre-update
// Little's-law rates and signals.
func (ws *WindowSystem) Run(w0 []float64, opt RunOptions) (*WindowRunResult, error) {
	opt = opt.withDefaults()
	start := opt.Clock()
	n := ws.sys.net.NumConnections()
	if len(w0) != n {
		return nil, fmt.Errorf("core: %d initial windows for %d connections", len(w0), n)
	}
	w := append([]float64(nil), w0...)
	var r []float64
	res := &WindowRunResult{}
	// Hook scratch: an effective-mu copy the hook may scale, and the
	// pre-update windows PerturbNext receives (the update below runs
	// in place).
	var effMu, wPrev []float64
	if opt.Hook != nil {
		effMu = make([]float64, len(ws.sys.plan.mu))
		wPrev = make([]float64, n)
	}
	calm := 0
	for step := 0; step < opt.MaxSteps; step++ {
		var rates []float64
		var obs *Observation
		var err error
		if opt.Hook == nil {
			rates, obs, err = ws.Rates(w, r)
		} else {
			copy(effMu, ws.sys.plan.mu)
			opt.Hook.BeginStep(step, effMu)
			rates, obs, err = ws.rates(w, r, effMu)
			if err == nil {
				opt.Hook.PerturbObservation(step, rates, obs)
			}
		}
		if err != nil {
			return nil, err
		}
		r = rates
		maxChange, maxW, resid := 0.0, 0.0, 0.0
		if opt.Tracer != nil {
			// The residual must reflect the pre-update windows, so it
			// is assembled in the same pass as the updates below; the
			// tracer fires first with the pre-update rates, using a
			// dedicated pre-pass over the laws.
			for i := range w {
				f := ws.sys.laws[i].Adjust(w[i], obs.Signals[i], obs.Delays[i])
				if w[i] == 0 && f < 0 {
					continue
				}
				if a := math.Abs(f); a > resid {
					resid = a
				}
			}
			opt.Tracer.OnStep(step, r, resid, obs.Signals)
		}
		resid = 0
		if opt.Hook != nil {
			copy(wPrev, w)
		}
		for i := range w {
			f := ws.sys.laws[i].Adjust(w[i], obs.Signals[i], obs.Delays[i])
			if !(w[i] == 0 && f < 0) {
				if a := math.Abs(f); a > resid {
					resid = a
				}
			}
			next := w[i] + f
			if next < 0 || math.IsNaN(next) {
				next = 0
			}
			if c := math.Abs(next - w[i]); c > maxChange {
				maxChange = c
			}
			w[i] = next
			if w[i] > maxW {
				maxW = w[i]
			}
		}
		if opt.Hook != nil {
			opt.Hook.PerturbNext(step, wPrev, w)
			// The hook may have moved w; the calm window tracks the
			// perturbed change so churn and stuck faults reset it.
			maxChange, maxW = 0, 0
			for i := range w {
				if c := math.Abs(w[i] - wPrev[i]); c > maxChange {
					maxChange = c
				}
				if w[i] > maxW {
					maxW = w[i]
				}
			}
		}
		res.Stats.observe(resid, step == 0)
		res.Steps = step + 1
		if maxChange <= opt.Tol*(1+maxW) {
			calm++
			if calm >= opt.Window {
				res.Converged = true
				if !opt.NoEarlyStop {
					break
				}
			}
		} else {
			calm = 0
			res.Converged = false
		}
	}
	rates, obs, err := ws.Rates(w, r)
	if err != nil {
		return nil, err
	}
	res.Windows = w
	res.Rates = rates
	res.Final = obs
	finalResid := 0.0
	for i := range w {
		f := ws.sys.laws[i].Adjust(w[i], obs.Signals[i], obs.Delays[i])
		if w[i] == 0 && f < 0 {
			continue
		}
		if a := math.Abs(f); a > finalResid {
			finalResid = a
		}
	}
	res.Stats.observe(finalResid, res.Steps == 0)
	res.Stats.FinalResidual = finalResid
	res.Stats.Steps = res.Steps
	res.Stats.WallTime = opt.Clock().Sub(start)
	return res, nil
}

package core

import (
	"math"
	"testing"

	"github.com/nettheory/feedbackflow/internal/control"
	"github.com/nettheory/feedbackflow/internal/queueing"
	"github.com/nettheory/feedbackflow/internal/signal"
	"github.com/nettheory/feedbackflow/internal/topology"
)

func TestRunAsyncConvergesWhereSyncOscillates(t *testing.T) {
	// The E5 instability: N=8, η=1.5 has ηN=12 > 2, synchronously
	// unstable. Asynchronously the effective per-update gain is η < 2,
	// so it converges.
	const n = 8
	net, err := topology.SingleGateway(n, 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	law := control.AdditiveTSI{Eta: 1.5, BSS: 0.5}
	sys, err := NewSystem(net, queueing.FIFO{}, signal.Aggregate, signal.Rational{}, control.Uniform(law, n))
	if err != nil {
		t.Fatal(err)
	}
	r0 := make([]float64, n)
	for i := range r0 {
		r0[i] = 0.0625 + 0.01*float64(i%3)
	}
	syncOut, err := sys.Run(r0, RunOptions{MaxSteps: 5000})
	if err != nil {
		t.Fatal(err)
	}
	if syncOut.Converged {
		t.Fatal("synchronous run should oscillate at ηN=12")
	}
	asyncOut, err := sys.RunAsync(r0, RunOptions{MaxSteps: 300000, Tol: 1e-10}, 3)
	if err != nil {
		t.Fatal(err)
	}
	if !asyncOut.Converged {
		t.Fatal("asynchronous run should converge at η=1.5 < 2")
	}
	sum := 0.0
	for _, r := range asyncOut.Rates {
		sum += r
	}
	if math.Abs(sum-0.5) > 1e-6 {
		t.Errorf("async steady state Σr = %v, want 0.5", sum)
	}
	resid, err := sys.Residual(asyncOut.Rates)
	if err != nil {
		t.Fatal(err)
	}
	if resid > 1e-9 {
		t.Errorf("async residual = %v", resid)
	}
}

func TestRunAsyncMatchesSyncFixedPoint(t *testing.T) {
	// Individual feedback has a unique steady state; async iteration
	// must find the same one.
	const n = 3
	net, err := topology.SingleGateway(n, 1, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	law := control.AdditiveTSI{Eta: 0.2, BSS: 0.6}
	sys, err := NewSystem(net, queueing.FairShare{}, signal.Individual, signal.Rational{}, control.Uniform(law, n))
	if err != nil {
		t.Fatal(err)
	}
	r0 := []float64{0.05, 0.2, 0.4}
	syncOut, err := sys.Run(r0, RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	asyncOut, err := sys.RunAsync(r0, RunOptions{MaxSteps: 400000, Tol: 1e-10}, 11)
	if err != nil {
		t.Fatal(err)
	}
	if !syncOut.Converged || !asyncOut.Converged {
		t.Fatal("both runs should converge")
	}
	for i := range syncOut.Rates {
		if math.Abs(syncOut.Rates[i]-asyncOut.Rates[i]) > 1e-5 {
			t.Errorf("r[%d]: sync %v vs async %v", i, syncOut.Rates[i], asyncOut.Rates[i])
		}
	}
}

func TestRunAsyncValidation(t *testing.T) {
	net, _ := topology.SingleGateway(2, 1, 0)
	law := control.AdditiveTSI{Eta: 0.1, BSS: 0.5}
	sys, _ := NewSystem(net, queueing.FIFO{}, signal.Aggregate, signal.Rational{}, control.Uniform(law, 2))
	if _, err := sys.RunAsync([]float64{0.1}, RunOptions{}, 1); err == nil {
		t.Error("want length error")
	}
}

func TestRunAsyncRecordsTrajectory(t *testing.T) {
	net, _ := topology.SingleGateway(2, 1, 0)
	law := control.AdditiveTSI{Eta: 0.1, BSS: 0.5}
	sys, _ := NewSystem(net, queueing.FIFO{}, signal.Aggregate, signal.Rational{}, control.Uniform(law, 2))
	out, err := sys.RunAsync([]float64{0.1, 0.1}, RunOptions{MaxSteps: 50, Record: true}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(out.Trajectory) != out.Steps+1 {
		t.Errorf("trajectory %d entries for %d steps", len(out.Trajectory), out.Steps)
	}
	// Each async step changes at most one coordinate.
	for k := 1; k < len(out.Trajectory); k++ {
		changed := 0
		for i := range out.Trajectory[k] {
			if out.Trajectory[k][i] != out.Trajectory[k-1][i] {
				changed++
			}
		}
		if changed > 1 {
			t.Fatalf("step %d changed %d coordinates", k, changed)
		}
	}
}

func TestRunAsyncDeterministicSeed(t *testing.T) {
	net, _ := topology.SingleGateway(3, 1, 0)
	law := control.AdditiveTSI{Eta: 0.3, BSS: 0.5}
	sys, _ := NewSystem(net, queueing.FIFO{}, signal.Aggregate, signal.Rational{}, control.Uniform(law, 3))
	r0 := []float64{0.1, 0.15, 0.2}
	a, err := sys.RunAsync(r0, RunOptions{MaxSteps: 500}, 9)
	if err != nil {
		t.Fatal(err)
	}
	b, err := sys.RunAsync(r0, RunOptions{MaxSteps: 500}, 9)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Rates {
		if a.Rates[i] != b.Rates[i] {
			t.Fatal("same seed diverged")
		}
	}
}

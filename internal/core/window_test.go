package core

import (
	"math"
	"testing"

	"github.com/nettheory/feedbackflow/internal/control"
	"github.com/nettheory/feedbackflow/internal/queueing"
	"github.com/nettheory/feedbackflow/internal/signal"
	"github.com/nettheory/feedbackflow/internal/topology"
)

func windowSystem(t *testing.T, net *topology.Network, law control.Law) *WindowSystem {
	t.Helper()
	sys, err := NewSystem(net, queueing.FIFO{}, signal.Aggregate, signal.Rational{},
		control.Uniform(law, net.NumConnections()))
	if err != nil {
		t.Fatal(err)
	}
	ws, err := NewWindowSystem(sys)
	if err != nil {
		t.Fatal(err)
	}
	return ws
}

func TestNewWindowSystemNil(t *testing.T) {
	if _, err := NewWindowSystem(nil); err == nil {
		t.Error("want error for nil system")
	}
}

func TestWindowRatesSingleConnection(t *testing.T) {
	// One connection, μ=1, latency l=1. Fixed point of r = w/d with
	// d = l + 1/(μ−r). For w = 1: r solves r(1 + 1/(1−r)) = 1,
	// i.e. r(2−r) = 1−r ⇒ r² − 3r + 1 = 0 ⇒ r = (3−√5)/2 ≈ 0.382.
	net, err := topology.SingleGateway(1, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	ws := windowSystem(t, net, control.AdditiveTSI{Eta: 0.1, BSS: 0.5})
	r, obs, err := ws.Rates([]float64{1}, nil)
	if err != nil {
		t.Fatal(err)
	}
	want := (3 - math.Sqrt(5)) / 2
	if math.Abs(r[0]-want) > 1e-9 {
		t.Errorf("r = %v, want %v", r[0], want)
	}
	// Little's law closes: r·d = w.
	if math.Abs(r[0]*obs.Delays[0]-1) > 1e-9 {
		t.Errorf("r·d = %v, want 1", r[0]*obs.Delays[0])
	}
}

func TestWindowRatesValidation(t *testing.T) {
	net, err := topology.SingleGateway(2, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	ws := windowSystem(t, net, control.AdditiveTSI{Eta: 0.1, BSS: 0.5})
	if _, _, err := ws.Rates([]float64{1}, nil); err == nil {
		t.Error("want window length error")
	}
	if _, _, err := ws.Rates([]float64{-1, 1}, nil); err == nil {
		t.Error("want negative window error")
	}
	if _, _, err := ws.Rates([]float64{1, 1}, []float64{0.1}); err == nil {
		t.Error("want guess length error")
	}
}

func TestWindowZeroWindowZeroRate(t *testing.T) {
	net, err := topology.SingleGateway(2, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	ws := windowSystem(t, net, control.AdditiveTSI{Eta: 0.1, BSS: 0.5})
	r, _, err := ws.Rates([]float64{0, 2}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if r[0] != 0 {
		t.Errorf("zero window should give zero rate, got %v", r[0])
	}
	if r[1] <= 0 {
		t.Errorf("positive window should give positive rate, got %v", r[1])
	}
}

func TestWindowEqualWindowsRatesScaleWithInverseRTT(t *testing.T) {
	// Two connections share a bottleneck; connection 1 has extra
	// latency through a fast private gateway. With EQUAL windows the
	// Little's-law rates must satisfy r_0/r_1 = d_1/d_0: the latency
	// unfairness of window flow control, with no law involved at all.
	var bld topology.Builder
	bottleneck := bld.AddGateway("bn", 1, 0.1)
	private := bld.AddGateway("priv", 100, 5)
	bld.AddConnection(bottleneck)
	bld.AddConnection(private, bottleneck)
	net, err := bld.Build()
	if err != nil {
		t.Fatal(err)
	}
	ws := windowSystem(t, net, control.AdditiveTSI{Eta: 0.1, BSS: 0.5})
	r, obs, err := ws.Rates([]float64{1, 1}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !(r[0] > r[1]) {
		t.Fatalf("short-RTT connection should be faster: %v", r)
	}
	ratio := r[0] / r[1]
	rttRatio := obs.Delays[1] / obs.Delays[0]
	if math.Abs(ratio-rttRatio) > 1e-6*rttRatio {
		t.Errorf("rate ratio %v vs RTT ratio %v", ratio, rttRatio)
	}
}

func TestWindowRunConverges(t *testing.T) {
	// Window LIMD on a single gateway: windows converge and rates are
	// positive and stable.
	net, err := topology.SingleGateway(2, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	ws := windowSystem(t, net, control.FairRateLIMD{Eta: 0.05, Beta: 0.2})
	res, err := ws.Run([]float64{0.5, 2}, RunOptions{MaxSteps: 100000})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Fatal("window run did not converge")
	}
	// Same law, same bottleneck, same RTT: equal windows and rates.
	if math.Abs(res.Windows[0]-res.Windows[1]) > 1e-6 {
		t.Errorf("windows should equalize: %v", res.Windows)
	}
	if math.Abs(res.Rates[0]-res.Rates[1]) > 1e-6 {
		t.Errorf("rates should equalize: %v", res.Rates)
	}
	// Little's law holds at the steady state.
	for i := range res.Rates {
		if math.Abs(res.Rates[i]*res.Final.Delays[i]-res.Windows[i]) > 1e-6 {
			t.Errorf("conn %d: r·d = %v, want w = %v", i, res.Rates[i]*res.Final.Delays[i], res.Windows[i])
		}
	}
}

func TestWindowRunValidation(t *testing.T) {
	net, err := topology.SingleGateway(2, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	ws := windowSystem(t, net, control.AdditiveTSI{Eta: 0.1, BSS: 0.5})
	if _, err := ws.Run([]float64{1}, RunOptions{}); err == nil {
		t.Error("want length error")
	}
}

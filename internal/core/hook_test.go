package core_test

import (
	"math/rand"
	"testing"

	"github.com/nettheory/feedbackflow/internal/control"
	"github.com/nettheory/feedbackflow/internal/core"
	"github.com/nettheory/feedbackflow/internal/queueing"
	"github.com/nettheory/feedbackflow/internal/signal"
	"github.com/nettheory/feedbackflow/internal/topology"
)

// noopHook mutates nothing: the hooked step must then be
// bit-identical to the unhooked one.
type noopHook struct{ begins, observes, nexts int }

func (h *noopHook) BeginStep(step int, mu []float64)                              { h.begins++ }
func (h *noopHook) PerturbObservation(step int, r []float64, o *core.Observation) { h.observes++ }
func (h *noopHook) PerturbNext(step int, r, next []float64)                       { h.nexts++ }

// muScaleHook halves every gateway's capacity: queues must grow
// relative to the unhooked run, proving BeginStep's mu copy reaches
// the queueing models.
type muScaleHook struct{ noopHook }

func (h *muScaleHook) BeginStep(step int, mu []float64) {
	for a := range mu {
		mu[a] *= 0.5
	}
}

// TestNoopHookBitIdentical is the acceptance property: across
// randomized topologies, disciplines, and feedback styles, a run with
// a hook that perturbs nothing produces bitwise-equal trajectories,
// final rates, and observations to an unhooked run.
func TestNoopHookBitIdentical(t *testing.T) {
	rng := rand.New(rand.NewSource(22))
	disciplines := []queueing.Discipline{queueing.FIFO{}, queueing.FairShare{}}
	styles := []signal.Style{signal.Aggregate, signal.Individual}
	for trial := 0; trial < 12; trial++ {
		nGws := 2 + rng.Intn(3)
		net, err := topology.Random(rng, nGws, 2+rng.Intn(4), 1+rng.Intn(nGws), 0.8, 1.5, 0.05)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		disc := disciplines[rng.Intn(len(disciplines))]
		style := styles[rng.Intn(len(styles))]
		n := net.NumConnections()
		laws := make([]control.Law, n)
		for i := range laws {
			laws[i] = control.AdditiveTSI{Eta: 0.05 + 0.1*rng.Float64(), BSS: 0.3 + 0.4*rng.Float64()}
		}
		sys, err := core.NewSystem(net, disc, style, signal.Rational{}, laws)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		r0 := make([]float64, n)
		for i := range r0 {
			r0[i] = 0.01 + 0.2*rng.Float64()
		}
		opt := core.RunOptions{MaxSteps: 300, Record: true}
		plain, err := sys.Run(r0, opt)
		if err != nil {
			t.Fatalf("trial %d plain: %v", trial, err)
		}
		hook := &noopHook{}
		opt.Hook = hook
		hooked, err := sys.Run(r0, opt)
		if err != nil {
			t.Fatalf("trial %d hooked: %v", trial, err)
		}
		if hook.begins == 0 || hook.observes == 0 || hook.nexts == 0 {
			t.Fatalf("trial %d: hook never invoked (%d/%d/%d)", trial, hook.begins, hook.observes, hook.nexts)
		}
		if plain.Steps != hooked.Steps || plain.Converged != hooked.Converged {
			t.Fatalf("trial %d: outcome differs: steps %d vs %d, converged %v vs %v",
				trial, plain.Steps, hooked.Steps, plain.Converged, hooked.Converged)
		}
		if len(plain.Trajectory) != len(hooked.Trajectory) {
			t.Fatalf("trial %d: trajectory length %d vs %d", trial, len(plain.Trajectory), len(hooked.Trajectory))
		}
		for k := range plain.Trajectory {
			for i := range plain.Trajectory[k] {
				if plain.Trajectory[k][i] != hooked.Trajectory[k][i] {
					t.Fatalf("trial %d: trajectory[%d][%d] = %v vs %v",
						trial, k, i, plain.Trajectory[k][i], hooked.Trajectory[k][i])
				}
			}
		}
		for i := range plain.Rates {
			if plain.Rates[i] != hooked.Rates[i] {
				t.Fatalf("trial %d: rates[%d] = %v vs %v", trial, i, plain.Rates[i], hooked.Rates[i])
			}
			if plain.Final.Signals[i] != hooked.Final.Signals[i] ||
				plain.Final.Delays[i] != hooked.Final.Delays[i] {
				t.Fatalf("trial %d: final observation differs at connection %d", trial, i)
			}
		}
	}
}

// TestMuScaleHookReachesQueues proves BeginStep's capacity scaling is
// not cosmetic: halving mu at a fixed rate vector must raise queues.
func TestMuScaleHookReachesQueues(t *testing.T) {
	net, err := topology.SingleGateway(2, 1.0, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	laws := []control.Law{
		control.AdditiveTSI{Eta: 0.1, BSS: 0.5},
		control.AdditiveTSI{Eta: 0.1, BSS: 0.5},
	}
	sys, err := core.NewSystem(net, queueing.FairShare{}, signal.Individual, signal.Rational{}, laws)
	if err != nil {
		t.Fatal(err)
	}
	r0 := []float64{0.2, 0.2}
	opt := core.RunOptions{MaxSteps: 1, NoEarlyStop: true}
	plain, err := sys.Run(r0, opt)
	if err != nil {
		t.Fatal(err)
	}
	opt.Hook = &muScaleHook{}
	degraded, err := sys.Run(r0, opt)
	if err != nil {
		t.Fatal(err)
	}
	// One step from the same r0: the degraded gateway signals more
	// congestion, so the additive law pulls rates down harder.
	for i := range plain.Rates {
		if !(degraded.Rates[i] < plain.Rates[i]) {
			t.Fatalf("rates[%d]: degraded %v not below plain %v", i, degraded.Rates[i], plain.Rates[i])
		}
	}
}

// TestNoEarlyStopRunsFullHorizon pins the NoEarlyStop contract: the
// run applies exactly MaxSteps updates yet still reports convergence
// when the calm-window criterion held at the end.
func TestNoEarlyStopRunsFullHorizon(t *testing.T) {
	net, err := topology.SingleGateway(2, 1.0, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	laws := []control.Law{
		control.AdditiveTSI{Eta: 0.1, BSS: 0.5},
		control.AdditiveTSI{Eta: 0.1, BSS: 0.5},
	}
	sys, err := core.NewSystem(net, queueing.FairShare{}, signal.Individual, signal.Rational{}, laws)
	if err != nil {
		t.Fatal(err)
	}
	const steps = 5000
	res, err := sys.Run([]float64{0.2, 0.3}, core.RunOptions{MaxSteps: steps, NoEarlyStop: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.Steps != steps {
		t.Fatalf("ran %d steps, want the full horizon %d", res.Steps, steps)
	}
	if !res.Converged {
		t.Fatal("calm at the horizon but Converged is false")
	}
}

// Package core composes the pieces of the paper's feedback flow
// control model — a network topology, a gateway service discipline, a
// congestion signalling scheme, and per-source rate adjustment laws —
// into the synchronous iterative procedure r' = F(r) of Section 2.3,
// and provides steady-state detection on top of it.
//
// The model's two standing approximations are implemented exactly as
// stated in the paper: queue lengths equilibrate instantly (Q^a(r)
// always reflects the current rate vector), and each connection's
// stream remains Poisson at every gateway on its path.
package core

import (
	"fmt"
	"math"
	"sync"
	"time"

	"github.com/nettheory/feedbackflow/internal/control"
	"github.com/nettheory/feedbackflow/internal/obs"
	"github.com/nettheory/feedbackflow/internal/queueing"
	"github.com/nettheory/feedbackflow/internal/signal"
	"github.com/nettheory/feedbackflow/internal/topology"
)

// System is a fully specified feedback flow control model. All fields
// are fixed at construction; the iteration state is the rate vector
// passed to the methods, so a System is safe for concurrent use.
type System struct {
	net   *topology.Network
	disc  queueing.Discipline
	style signal.Style
	b     signal.Func
	laws  []control.Law
	plan  plan
	// pool recycles Workspaces for the transient fast paths (Step,
	// Residual, Run); it keeps those entry points allocation-free in
	// steady state without compromising concurrent use.
	pool sync.Pool
}

// plan is the topology compiled into flat index arrays at NewSystem
// time, so the per-step hot path does no map lookups and can address
// all per-gateway scratch as contiguous slices. Slot p.off[a]+k in the
// flat buffers belongs to the k'th connection of Γ(a).
type plan struct {
	nConns, nGws int
	conns        [][]int   // conns[a]: Γ(a), shared with the Network
	mu           []float64 // mu[a]: gateway a's service rate
	off          []int     // off[a]: first flat slot of gateway a; off[nGws] = total
	slots        [][]int   // slots[i][p]: flat slot of connection i at its p'th hop
	hopLat       [][]float64
	routes       [][]int // routes[i]: γ(i), shared with the Network
	maxPath      int     // longest route, sizes the per-path scratch
	maxGw        int     // largest gateway population, sizes the sort scratches
	connOff      []int   // connOff[i]: first flat hop slot of connection i; connOff[nConns] = total
}

// compilePlan precomputes the flat connection-index arrays that
// replace the per-step local-index maps the iteration used to build.
func compilePlan(net *topology.Network) plan {
	nGws, nConns := net.NumGateways(), net.NumConnections()
	p := plan{
		nConns:  nConns,
		nGws:    nGws,
		conns:   make([][]int, nGws),
		mu:      make([]float64, nGws),
		off:     make([]int, nGws+1),
		slots:   make([][]int, nConns),
		hopLat:  make([][]float64, nConns),
		routes:  make([][]int, nConns),
		connOff: make([]int, nConns+1),
	}
	total := 0
	local := make([]map[int]int, nGws)
	for a := 0; a < nGws; a++ {
		conns := net.Connections(a)
		p.conns[a] = conns
		p.mu[a] = net.Gateway(a).Mu
		p.off[a] = total
		total += len(conns)
		if len(conns) > p.maxGw {
			p.maxGw = len(conns)
		}
		local[a] = make(map[int]int, len(conns))
		for k, i := range conns {
			local[a][i] = k
		}
	}
	p.off[nGws] = total
	hopTotal := 0
	for i := 0; i < nConns; i++ {
		route := net.Route(i)
		p.routes[i] = route
		p.connOff[i] = hopTotal
		hopTotal += len(route)
		if len(route) > p.maxPath {
			p.maxPath = len(route)
		}
		slots := make([]int, len(route))
		lat := make([]float64, len(route))
		for hop, a := range route {
			slots[hop] = p.off[a] + local[a][i]
			lat[hop] = net.Gateway(a).Latency
		}
		p.slots[i] = slots
		p.hopLat[i] = lat
	}
	p.connOff[nConns] = hopTotal
	return p
}

// NewSystem validates and assembles a System. laws must contain one
// rate adjustment law per connection (use control.Uniform for the
// homogeneous case).
//
// As a taint sink, NewSystem must never see raw network or file input:
// untrusted scenarios reach it only through scenario.Load + Build.
//
//ffc:taint sink
func NewSystem(net *topology.Network, disc queueing.Discipline, style signal.Style, b signal.Func, laws []control.Law) (*System, error) {
	if net == nil {
		return nil, fmt.Errorf("core: nil network")
	}
	if disc == nil {
		return nil, fmt.Errorf("core: nil discipline")
	}
	if b == nil {
		return nil, fmt.Errorf("core: nil signal function")
	}
	if len(laws) != net.NumConnections() {
		return nil, fmt.Errorf("core: %d laws for %d connections", len(laws), net.NumConnections())
	}
	for i, l := range laws {
		if l == nil {
			return nil, fmt.Errorf("core: law %d is nil", i)
		}
	}
	if style != signal.Aggregate && style != signal.Individual {
		return nil, fmt.Errorf("core: unknown feedback style %v", style)
	}
	s := &System{net: net, disc: disc, style: style, b: b, laws: laws}
	s.plan = compilePlan(net)
	s.pool.New = func() interface{} { return s.NewWorkspace() }
	return s, nil
}

// acquire takes a pooled Workspace for a transient internal call.
func (s *System) acquire() *Workspace { return s.pool.Get().(*Workspace) }

// release returns a pooled Workspace. Nothing borrowed from the
// workspace (in particular its Observation) may be retained past this
// point.
func (s *System) release(w *Workspace) { s.pool.Put(w) }

// Network returns the topology.
func (s *System) Network() *topology.Network { return s.net }

// Discipline returns the gateway service discipline.
func (s *System) Discipline() queueing.Discipline { return s.disc }

// Style returns the feedback style.
func (s *System) Style() signal.Style { return s.style }

// SignalFunc returns the congestion signal function B.
func (s *System) SignalFunc() signal.Func { return s.b }

// Law returns connection i's rate adjustment law.
func (s *System) Law(i int) control.Law { return s.laws[i] }

// Observation is everything the model computes from a rate vector:
// per-gateway queues, the combined congestion signals, and round-trip
// delays.
type Observation struct {
	// Signals[i] is b_i = max_a b^a_i, the bottleneck-combined signal.
	Signals []float64
	// Delays[i] is d_i = Σ_a (l_a + W^a_i): propagation plus queueing
	// delay along the path. +Inf when a path gateway is overloaded.
	Delays []float64
	// Queues[a][k] is the queue of the k'th connection of Γ(a) at
	// gateway a (indexing parallels Network.Connections(a)).
	Queues [][]float64
	// Bottlenecks[i] lists the gateways a on i's path with b^a_i = b_i
	// (within a small tolerance): the gateways the paper deems
	// bottlenecks for i.
	Bottlenecks [][]int
}

// Observe computes the Observation at rate vector r. The returned
// Observation is freshly allocated and owned by the caller; its queue
// rows share one backing array. Hot loops that observe repeatedly
// should hold a Workspace and use Workspace.Observe instead.
func (s *System) Observe(r []float64) (*Observation, error) {
	// A throwaway workspace: the caller keeps its Observation, so it
	// cannot come from the pool.
	return s.NewWorkspace().Observe(r)
}

// Step applies one synchronous update r' = max(0, r + f(r, b, d)).
// The update itself runs through a pooled workspace, so the only
// steady-state allocation is the returned slice.
func (s *System) Step(r []float64) ([]float64, error) {
	next := make([]float64, len(r))
	w := s.acquire()
	_, _, err := w.stepInto(r, next)
	s.release(w)
	if err != nil {
		return nil, err
	}
	return next, nil
}

// Residual returns max_i |f_i(r, b_i, d_i)| — the distance from the
// steady-state condition f ≡ 0 — at rate vector r. Truncated
// connections (r_i = 0 with f_i < 0) contribute zero: they are at rest
// by the truncation rule, exactly the mechanism behind the Section 3.4
// starvation steady state.
func (s *System) Residual(r []float64) (float64, error) {
	w := s.acquire()
	defer s.release(w)
	if err := w.observe(r); err != nil {
		return 0, err
	}
	return s.residualFrom(r, &w.obs), nil
}

// residualFrom computes the steady-state residual at r from an
// observation already taken there.
func (s *System) residualFrom(r []float64, obs *Observation) float64 {
	res := 0.0
	for i := range r {
		f := s.laws[i].Adjust(r[i], obs.Signals[i], obs.Delays[i])
		if r[i] == 0 && f < 0 {
			continue
		}
		if a := math.Abs(f); a > res {
			res = a
		}
	}
	return res
}

// RunOptions controls Run.
type RunOptions struct {
	// MaxSteps bounds the iteration count (default 20000).
	MaxSteps int
	// Tol is the convergence tolerance on the sup-norm rate change
	// (default 1e-10, relative to 1 + max rate).
	Tol float64
	// Window is how many consecutive sub-tolerance steps constitute
	// convergence (default 3).
	Window int
	// Record retains the full trajectory in the result.
	Record bool
	// Tracer, when non-nil, receives one callback per applied update
	// with the pre-update state (see obs.StepTracer for the exact
	// contract). A nil Tracer adds no work and no allocations to the
	// iteration (guarded by BenchmarkStepNoTracer).
	Tracer obs.StepTracer
	// Clock supplies the wall-clock readings behind RunStats.WallTime
	// (default time.Now). Like entropy, time enters the deterministic
	// kernels only through explicit inputs — the detsource analyzer
	// forbids direct time.Now calls inside them — and injecting the
	// clock also lets tests pin WallTime exactly.
	Clock func() time.Time
	// Hook, when non-nil, interposes on every update: it may degrade
	// gateway capacity, perturb the observation before the laws see
	// it, and override the post-law rates (see StepHook). A nil Hook
	// leaves the iteration bit-identical to an unhooked run. The
	// fault-injection layer (internal/fault) is the intended user.
	Hook StepHook
	// NoEarlyStop disables the convergence early-exit so the run
	// always executes exactly MaxSteps updates. Perturbed runs use it:
	// recovery analysis needs the full horizon even though the system
	// sits still between disturbances (the calm-window criterion would
	// otherwise end the run before the next injected fault fires).
	NoEarlyStop bool
}

func (o RunOptions) withDefaults() RunOptions {
	if o.MaxSteps <= 0 {
		o.MaxSteps = 20000
	}
	if o.Tol <= 0 {
		o.Tol = 1e-10
	}
	if o.Window <= 0 {
		o.Window = 3
	}
	if o.Clock == nil {
		o.Clock = time.Now
	}
	return o
}

// RunStats is the telemetry a run records about itself: step count,
// wall time, and a summary of the residual trajectory (the distance
// max|f_i| from steady state at each visited rate vector). It is
// collected unconditionally — the residuals fall out of the updates
// already being computed — so every run is measurable after the fact.
type RunStats struct {
	// Steps is the number of updates applied (same as RunResult.Steps).
	Steps int
	// WallTime is the elapsed wall-clock time of the run.
	WallTime time.Duration
	// InitialResidual is the residual at the initial rate vector.
	InitialResidual float64
	// FinalResidual is the residual at the final rate vector.
	FinalResidual float64
	// MinResidual and MaxResidual are the extremes over every visited
	// rate vector (including initial and final). A converging run has
	// FinalResidual ≈ MinResidual; an oscillating one does not.
	MinResidual, MaxResidual float64
}

// observe folds one residual sample into the summary.
func (st *RunStats) observe(resid float64, first bool) {
	if first {
		st.InitialResidual = resid
		st.MinResidual, st.MaxResidual = resid, resid
		return
	}
	if resid < st.MinResidual {
		st.MinResidual = resid
	}
	if resid > st.MaxResidual {
		st.MaxResidual = resid
	}
}

// RunResult reports the outcome of an iteration run.
type RunResult struct {
	// Rates is the final rate vector.
	Rates []float64
	// Steps is the number of updates applied.
	Steps int
	// Converged reports whether the convergence criterion was met
	// before MaxSteps; oscillatory and chaotic runs report false.
	Converged bool
	// Final is the observation at the final rates.
	Final *Observation
	// Stats holds the run's telemetry: wall time and the residual
	// trajectory summary.
	Stats RunStats
	// Trajectory holds every visited rate vector (including the
	// initial one) when RunOptions.Record is set, and is nil otherwise.
	Trajectory [][]float64
}

// Run iterates the synchronous procedure from r0 until convergence or
// the step budget is exhausted.
//
//ffc:taint sink
func (s *System) Run(r0 []float64, opt RunOptions) (*RunResult, error) {
	opt = opt.withDefaults()
	start := opt.Clock()
	if len(r0) != s.net.NumConnections() {
		return nil, fmt.Errorf("core: %d initial rates for %d connections", len(r0), s.net.NumConnections())
	}
	r := append([]float64(nil), r0...)
	next := make([]float64, len(r))
	ws := s.acquire()
	defer s.release(ws)
	res := &RunResult{}
	if opt.Record {
		res.Trajectory = append(res.Trajectory, append([]float64(nil), r...))
	}
	calm := 0
	for step := 0; step < opt.MaxSteps; step++ {
		var (
			obs   *Observation
			resid float64
			err   error
		)
		if opt.Hook == nil {
			obs, resid, err = ws.stepInto(r, next)
		} else {
			obs, resid, err = ws.hookedStep(step, r, next, opt.Hook)
		}
		if err != nil {
			return nil, err
		}
		res.Stats.observe(resid, step == 0)
		if opt.Tracer != nil {
			opt.Tracer.OnStep(step, r, resid, obs.Signals)
		}
		maxChange, maxRate := 0.0, 0.0
		for i := range r {
			if c := math.Abs(next[i] - r[i]); c > maxChange {
				maxChange = c
			}
			if next[i] > maxRate {
				maxRate = next[i]
			}
		}
		r, next = next, r
		res.Steps = step + 1
		if opt.Record {
			res.Trajectory = append(res.Trajectory, append([]float64(nil), r...))
		}
		if maxChange <= opt.Tol*(1+maxRate) {
			calm++
			if calm >= opt.Window {
				res.Converged = true
				if !opt.NoEarlyStop {
					break
				}
			}
		} else {
			calm = 0
			res.Converged = false
		}
	}
	res.Rates = r
	final, err := s.Observe(r)
	if err != nil {
		return nil, err
	}
	res.Final = final
	finalResid := s.residualFrom(r, final)
	res.Stats.observe(finalResid, res.Steps == 0)
	res.Stats.FinalResidual = finalResid
	res.Stats.Steps = res.Steps
	res.Stats.WallTime = opt.Clock().Sub(start)
	return res, nil
}

// StepFunc returns F as a plain function r ↦ F(r) for use by the
// stability package's numerical differentiation. The returned function
// panics on model errors, which cannot occur for non-negative finite
// rate vectors of the right length.
func (s *System) StepFunc() func([]float64) []float64 {
	return func(r []float64) []float64 {
		next, err := s.Step(r)
		if err != nil {
			panic(fmt.Sprintf("core: step failed: %v", err))
		}
		return next
	}
}

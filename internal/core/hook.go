package core

import "math"

// StepHook interposes on each synchronous update of a run. It is the
// seam the fault-injection layer (internal/fault) plugs into: every
// step, the hook may degrade gateway capacity, perturb the freshly
// computed observation before the rate laws see it, and override the
// post-law rates — which together cover feedback-signal faults
// (loss, delay, noise), gateway degradation and outage, connection
// churn, and misbehaving (stuck, greedy) sources.
//
// The contract mirrors obs.StepTracer's: hooks run synchronously on
// the iterating goroutine, and every slice they receive is borrowed —
// valid only for the duration of the callback, mutable in place, never
// to be retained. A nil RunOptions.Hook adds no work to the iteration
// and leaves the update path bit-identical to an unhooked run (the
// guarantee internal/fault's identity property test pins).
//
// Unlike a Tracer, a StepHook changes the dynamics; determinism is
// preserved only if the hook itself is deterministic (seeded RNGs,
// no ambient clocks — the detsource analyzer enforces this inside
// internal/fault).
type StepHook interface {
	// BeginStep runs before the step's observation is computed. mu is
	// a mutable copy of the per-gateway service rates, indexed like
	// the topology's gateways; scaling mu[a] in place models capacity
	// degradation (a small positive floor models an outage — the
	// queueing models require mu > 0).
	BeginStep(step int, mu []float64)
	// PerturbObservation runs after the observation at r is computed
	// and before the rate laws are applied. The hook may rewrite
	// o.Signals and o.Delays in place (feedback loss, delay, noise,
	// quantization). o and its slices are borrowed from the workspace.
	PerturbObservation(step int, r []float64, o *Observation)
	// PerturbNext runs after the laws produced the tentative next
	// state. The hook may rewrite next in place (stuck sources hold
	// next[i] = r[i], greedy sources refuse decreases, churned
	// connections are pinned to zero or rejoin). r is read-only.
	PerturbNext(step int, r, next []float64)
}

// hookedStep is Workspace.stepInto with the three hook callbacks
// spliced in. The arithmetic between the callbacks — the observation,
// the law applications, the truncation rule, and the residual fold —
// is kept operation-for-operation identical to stepInto, so a hook
// whose callbacks do not mutate anything yields bit-identical
// trajectories (internal/fault's zero Config relies on this).
func (w *Workspace) hookedStep(step int, r, next []float64, h StepHook) (*Observation, float64, error) {
	p := &w.sys.plan
	if w.effMu == nil {
		w.effMu = make([]float64, len(p.mu))
	}
	copy(w.effMu, p.mu)
	h.BeginStep(step, w.effMu)
	w.muOverride = w.effMu
	err := w.observe(r)
	w.muOverride = nil
	if err != nil {
		return nil, 0, err
	}
	h.PerturbObservation(step, r, &w.obs)
	s := w.sys
	residual := 0.0
	for i := range r {
		f := s.laws[i].Adjust(r[i], w.obs.Signals[i], w.obs.Delays[i])
		v := r[i] + f
		if v < 0 || math.IsNaN(v) {
			v = 0
		}
		next[i] = v
		if r[i] == 0 && f < 0 {
			continue // truncated: at rest by the truncation rule
		}
		if a := math.Abs(f); a > residual {
			residual = a
		}
	}
	h.PerturbNext(step, r, next)
	return &w.obs, residual, nil
}

package core

import (
	"fmt"
	"math"

	"github.com/nettheory/feedbackflow/internal/queueing"
	"github.com/nettheory/feedbackflow/internal/signal"
)

// Workspace holds every buffer the iteration r' = F(r) needs — flat
// per-gateway rate/queue/sojourn/signal scratch, the discipline's sort
// scratch, and a reusable Observation — so repeated Observe and Step
// calls perform zero heap allocations in steady state. All sizing
// comes from the System's compiled plan, fixed at NewSystem time.
//
// A Workspace belongs to one goroutine at a time; give each concurrent
// worker its own (System itself remains safe for concurrent use, and
// System.Step/Run draw from an internal pool). The Observation
// returned by Observe and the observation passed to tracers are owned
// by the workspace and overwritten by its next call.
type Workspace struct {
	sys *System

	// Flat per-gateway scratch: gateway a's block is the slot range
	// [plan.off[a], plan.off[a+1]).
	local    []float64 // per-gateway rate vectors
	sojourns []float64 // per-gateway sojourn times W^a_i
	signals  []float64 // per-gateway signals b^a_i
	queues   []float64 // backing array of obs.Queues
	perGw    []float64 // one connection's per-hop signals (combine scratch)
	bn       []int     // backing array of obs.Bottlenecks rows

	scr    queueing.Scratch // discipline sort/prefix scratch (sized to the largest gateway)
	sigScr signal.Scratch   // batched-signal sort/prefix scratch (same sizing)
	obs    Observation

	// muOverride, when non-nil, replaces the plan's per-gateway
	// service rates for the next observe call; hookedStep points it at
	// effMu (a copy of plan.mu the StepHook may scale in place) for
	// the duration of one step. Both are nil on the unhooked path, so
	// plain runs never pay for the indirection.
	muOverride []float64
	effMu      []float64
}

// NewWorkspace allocates a Workspace for s. Every hot per-connection
// column — rates, queues, sojourns, signals, the bottleneck index rows
// — lives in one flat contiguous backing array per field (structure of
// arrays), and the discipline and signal sort scratches are pre-grown
// to the largest gateway population, all sized from the compiled plan
// here. Subsequent Observe/Step calls therefore allocate nothing at
// all, first call included, and the step kernel streams each column
// cache-linearly. The workspace's queue rows (obs.Queues[a]) and
// bottleneck rows (obs.Bottlenecks[i]) are views into those backing
// arrays, established once and reused by every call.
func (s *System) NewWorkspace() *Workspace {
	p := &s.plan
	total := p.off[p.nGws]
	w := &Workspace{
		sys:      s,
		local:    make([]float64, total),
		sojourns: make([]float64, total),
		signals:  make([]float64, total),
		queues:   make([]float64, total),
		perGw:    make([]float64, p.maxPath),
		bn:       make([]int, p.connOff[p.nConns]),
		obs: Observation{
			Signals:     make([]float64, p.nConns),
			Delays:      make([]float64, p.nConns),
			Queues:      make([][]float64, p.nGws),
			Bottlenecks: make([][]int, p.nConns),
		},
	}
	w.scr.Grow(p.maxGw)
	w.sigScr.Grow(p.maxGw)
	for a := 0; a < p.nGws; a++ {
		lo, hi := p.off[a], p.off[a+1]
		w.obs.Queues[a] = w.queues[lo:hi:hi]
	}
	for i := 0; i < p.nConns; i++ {
		lo, hi := p.connOff[i], p.connOff[i+1]
		w.obs.Bottlenecks[i] = w.bn[lo:lo:hi]
	}
	return w
}

// System returns the system this workspace steps.
func (w *Workspace) System() *System { return w.sys }

// Observe computes the Observation at rate vector r into the
// workspace's reusable Observation and returns it. The result — every
// slice in it — is borrowed from the workspace: it is valid only until
// the next Observe/Step/Run call on this workspace, and must be copied
// to be retained. Values are bit-identical to System.Observe.
//
// The ffc:hotpath directive marks the steady-state zero-allocation
// contract (guarded by the allocation benchmarks); the hotalloc
// analyzer mechanically rejects allocating constructs in any function
// carrying it.
//
//ffc:hotpath
func (w *Workspace) Observe(r []float64) (*Observation, error) {
	if err := w.observe(r); err != nil {
		return nil, err
	}
	return &w.obs, nil
}

// observe fills w.obs with the observation at r without allocating.
//
//ffc:hotpath
func (w *Workspace) observe(r []float64) error {
	s := w.sys
	p := &s.plan
	if len(r) != p.nConns {
		return fmt.Errorf("core: %d rates for %d connections", len(r), p.nConns)
	}
	// Per-gateway queue vectors, sojourn times, and signals, written
	// into the flat scratch blocks.
	mu := p.mu
	if w.muOverride != nil {
		mu = w.muOverride
	}
	for a := 0; a < p.nGws; a++ {
		lo, hi := p.off[a], p.off[a+1]
		local := w.local[lo:hi]
		for k, i := range p.conns[a] {
			local[k] = r[i]
		}
		if err := queueing.ObserveInto(s.disc, w.queues[lo:hi], w.sojourns[lo:hi], local, mu[a], &w.scr); err != nil {
			return fmt.Errorf("core: gateway %d: %w", a, err)
		}
		if err := signal.GatewaySignalsBatched(w.signals[lo:hi], s.style, s.b, w.queues[lo:hi], &w.sigScr); err != nil {
			return fmt.Errorf("core: gateway %d: %w", a, err)
		}
	}
	// Combine along paths.
	const bottleneckTol = 1e-12
	for i := 0; i < p.nConns; i++ {
		slots := p.slots[i]
		hopLat := p.hopLat[i]
		perGw := w.perGw[:len(slots)]
		d := 0.0
		for hop, k := range slots {
			perGw[hop] = w.signals[k]
			d += hopLat[hop] + w.sojourns[k]
		}
		b, err := signal.CombineBottleneck(perGw)
		if err != nil {
			return fmt.Errorf("core: connection %d: %w", i, err)
		}
		w.obs.Signals[i] = b
		w.obs.Delays[i] = d
		bn := w.obs.Bottlenecks[i][:0]
		for hop, a := range p.routes[i] {
			if perGw[hop] >= b-bottleneckTol {
				bn = append(bn, a)
			}
		}
		w.obs.Bottlenecks[i] = bn
	}
	return nil
}

// Step applies one synchronous update r' = max(0, r + f(r, b, d)),
// writing the result into next. next must have length len(r) and must
// not alias r. It is the allocation-free counterpart of System.Step
// and produces bit-identical values.
//
//ffc:hotpath
func (w *Workspace) Step(r, next []float64) error {
	if len(next) != len(r) {
		return fmt.Errorf("core: %d-slot buffer for %d rates", len(next), len(r))
	}
	_, _, err := w.stepInto(r, next)
	return err
}

// stepInto applies one synchronous update of r into next (same length,
// no aliasing), returning the workspace's observation at r and the
// steady-state residual max|f_i| there. Computing the residual
// alongside the update is free — the f_i are already in hand — which
// is what lets Run keep a residual trajectory summary without extra
// Observe calls.
//
//ffc:hotpath
func (w *Workspace) stepInto(r, next []float64) (*Observation, float64, error) {
	if err := w.observe(r); err != nil {
		return nil, 0, err
	}
	s := w.sys
	residual := 0.0
	for i := range r {
		f := s.laws[i].Adjust(r[i], w.obs.Signals[i], w.obs.Delays[i])
		v := r[i] + f
		if v < 0 || math.IsNaN(v) {
			v = 0
		}
		next[i] = v
		if r[i] == 0 && f < 0 {
			continue // truncated: at rest by the truncation rule
		}
		if a := math.Abs(f); a > residual {
			residual = a
		}
	}
	return &w.obs, residual, nil
}

// Residual is the allocation-free counterpart of System.Residual.
//
//ffc:hotpath
func (w *Workspace) Residual(r []float64) (float64, error) {
	if err := w.observe(r); err != nil {
		return 0, err
	}
	return w.sys.residualFrom(r, &w.obs), nil
}

package core

import (
	"fmt"

	"github.com/nettheory/feedbackflow/internal/obs"
)

// Report assembles the machine-readable run report for a completed
// run: the iteration outcome and residual summary from res.Stats plus
// per-gateway queue statistics derived from the final observation.
// This is what ffc -metrics-json emits.
func (s *System) Report(res *RunResult, scenario string) (*obs.RunReport, error) {
	if res == nil || res.Final == nil {
		return nil, fmt.Errorf("core: report of an incomplete run")
	}
	rep := &obs.RunReport{
		Schema:          obs.RunReportSchema,
		Scenario:        scenario,
		Steps:           res.Steps,
		Converged:       res.Converged,
		WallNS:          res.Stats.WallTime.Nanoseconds(),
		InitialResidual: obs.Float(res.Stats.InitialResidual),
		FinalResidual:   obs.Float(res.Stats.FinalResidual),
		MinResidual:     obs.Float(res.Stats.MinResidual),
		MaxResidual:     obs.Float(res.Stats.MaxResidual),
		Rates:           obs.Floats(res.Rates),
		Signals:         obs.Floats(res.Final.Signals),
		Delays:          obs.Floats(res.Final.Delays),
	}
	for a, queues := range res.Final.Queues {
		g := obs.GatewayReport{
			Gateway:     a,
			Connections: len(queues),
			Queues:      obs.Floats(queues),
		}
		load := 0.0
		for _, i := range s.net.Connections(a) {
			load += res.Rates[i]
		}
		g.Utilization = obs.Float(load / s.net.Gateway(a).Mu)
		total, max := 0.0, 0.0
		for _, q := range queues {
			total += q
			if q > max {
				max = q
			}
		}
		g.TotalQueue = obs.Float(total)
		g.MaxQueue = obs.Float(max)
		rep.Gateways = append(rep.Gateways, g)
	}
	return rep, nil
}

package fault

import (
	"fmt"
	"math"
	"strconv"
	"strings"
)

// Parse decodes the compact fault spec grammar used by ffc -fault.
// A spec is a comma-separated list of clauses:
//
//	seed=N                 RNG seed (default 1)
//	loss=P[@F-T]           signal loss probability P in [0,1]
//	delay=D[@F-T]          signals delivered D steps late
//	noise=A[@F-T]          uniform ±A signal noise, clamped to [0,1]
//	quantum=Q[@F-T]        signals quantized to multiples of Q
//	rejoin=R               restart rate after churn (default 0.01)
//	degrade=G:X[@F-T]      gateway G serves at X times nominal rate
//	outage=G[@F-T]         gateway G fully out (degrade with X = 0)
//	churn=C[@F-T]          connection C leaves at F, rejoins at T
//	stuck=C[@F-T]          connection C's rate frozen
//	greedy=C[@F-T]         connection C refuses rate decreases
//
// The optional @F-T suffix restricts a clause to the half-open step
// window [F,T); @F- leaves the window open-ended, and omitting the
// suffix applies the clause to the whole run. degrade/outage/churn/
// stuck/greedy clauses may repeat. The empty spec parses to the zero
// Config (inject nothing).
//
// Parse validates ranges and shapes but not topology indices — pass
// the result through Config.Validate once the model is known.
//
//ffc:taint sanitizer
func Parse(spec string) (Config, error) {
	cfg := Config{Seed: 1, RejoinRate: 0.01}
	spec = strings.TrimSpace(spec)
	if spec == "" {
		return Config{}, nil
	}
	for _, clause := range strings.Split(spec, ",") {
		clause = strings.TrimSpace(clause)
		if clause == "" {
			continue
		}
		key, val, found := strings.Cut(clause, "=")
		if !found || key == "" || val == "" {
			return Config{}, fmt.Errorf("fault: clause %q is not key=value", clause)
		}
		val, window, err := splitWindow(val)
		if err != nil {
			return Config{}, err
		}
		hasWindow := !window.whole()
		switch key {
		case "seed":
			if hasWindow {
				return Config{}, fmt.Errorf("fault: seed takes no window")
			}
			seed, err := strconv.ParseInt(val, 10, 64)
			if err != nil {
				return Config{}, fmt.Errorf("fault: bad seed %q", val)
			}
			cfg.Seed = seed
		case "loss":
			v, err := parseProb(key, val)
			if err != nil {
				return Config{}, err
			}
			if v > 0 { // a zero clause is a no-op; keep the config canonical
				cfg.Loss, cfg.LossWindow = v, window
			}
		case "delay":
			d, err := strconv.Atoi(val)
			if err != nil || d < 0 || d > 1<<20 {
				return Config{}, fmt.Errorf("fault: bad delay %q (want an integer in [0, 2^20])", val)
			}
			if d > 0 {
				cfg.Delay, cfg.DelayWindow = d, window
			}
		case "noise":
			v, err := parseProb(key, val)
			if err != nil {
				return Config{}, err
			}
			if v > 0 {
				cfg.Noise, cfg.NoiseWindow = v, window
			}
		case "quantum":
			v, err := parseProb(key, val)
			if err != nil {
				return Config{}, err
			}
			if v > 0 {
				cfg.Quantum, cfg.QuantumWindow = v, window
			}
		case "rejoin":
			if hasWindow {
				return Config{}, fmt.Errorf("fault: rejoin takes no window")
			}
			r, err := strconv.ParseFloat(val, 64)
			if err != nil || math.IsNaN(r) || math.IsInf(r, 0) || r <= 0 {
				return Config{}, fmt.Errorf("fault: bad rejoin rate %q (want a positive number)", val)
			}
			cfg.RejoinRate = r
		case "degrade":
			gw, factor, found := strings.Cut(val, ":")
			if !found {
				return Config{}, fmt.Errorf("fault: degrade wants gateway:factor, got %q", val)
			}
			g, err := parseIndex("degrade gateway", gw)
			if err != nil {
				return Config{}, err
			}
			f, err := parseProb("degrade factor", factor)
			if err != nil {
				return Config{}, err
			}
			cfg.Degrade = append(cfg.Degrade, GatewayFault{Gateway: g, Factor: f, Window: window})
		case "outage":
			g, err := parseIndex("outage gateway", val)
			if err != nil {
				return Config{}, err
			}
			cfg.Degrade = append(cfg.Degrade, GatewayFault{Gateway: g, Factor: 0, Window: window})
		case "churn":
			f, err := parseConnFault(key, val, window)
			if err != nil {
				return Config{}, err
			}
			cfg.Churn = append(cfg.Churn, f)
		case "stuck":
			f, err := parseConnFault(key, val, window)
			if err != nil {
				return Config{}, err
			}
			cfg.Stuck = append(cfg.Stuck, f)
		case "greedy":
			f, err := parseConnFault(key, val, window)
			if err != nil {
				return Config{}, err
			}
			cfg.Greedy = append(cfg.Greedy, f)
		default:
			return Config{}, fmt.Errorf("fault: unknown clause %q", key)
		}
	}
	if !cfg.Enabled() {
		// Only seed/rejoin given: normalize to the canonical zero
		// config so "parses to identity" is a structural fact.
		return Config{}, nil
	}
	if err := cfg.Validate(-1, -1); err != nil {
		return Config{}, err
	}
	return cfg, nil
}

// splitWindow splits an optional trailing @F-T window off a clause
// value.
func splitWindow(val string) (string, Window, error) {
	val, suffix, found := strings.Cut(val, "@")
	if !found {
		return val, Window{}, nil
	}
	from, to, found := strings.Cut(suffix, "-")
	if !found {
		return "", Window{}, fmt.Errorf("fault: window %q wants from-to", suffix)
	}
	f, err := parseIndex("window start", from)
	if err != nil {
		return "", Window{}, err
	}
	w := Window{From: f}
	if to != "" {
		t, err := parseIndex("window end", to)
		if err != nil {
			return "", Window{}, err
		}
		if t <= f {
			return "", Window{}, fmt.Errorf("fault: window [%d,%d) is empty", f, t)
		}
		w.To = t
	}
	if w.whole() {
		// "@0-" parses as the whole run; keep it canonical.
		w = Window{}
	}
	return val, w, nil
}

func parseProb(what, val string) (float64, error) {
	v, err := strconv.ParseFloat(val, 64)
	if err != nil || math.IsNaN(v) || v < 0 || v > 1 {
		return 0, fmt.Errorf("fault: bad %s %q (want a number in [0,1])", what, val)
	}
	return v, nil
}

func parseIndex(what, val string) (int, error) {
	// Reject "", "+1", "1e2", etc.: indices are plain decimal digits.
	if val == "" {
		return 0, fmt.Errorf("fault: bad %s %q (want a non-negative integer)", what, val)
	}
	for _, ch := range val {
		if ch < '0' || ch > '9' {
			return 0, fmt.Errorf("fault: bad %s %q (want a non-negative integer)", what, val)
		}
	}
	v, err := strconv.Atoi(val)
	if err != nil {
		return 0, fmt.Errorf("fault: bad %s %q: %v", what, val, err)
	}
	return v, nil
}

func parseConnFault(what, val string, w Window) (ConnFault, error) {
	c, err := parseIndex(what+" connection", val)
	if err != nil {
		return ConnFault{}, err
	}
	return ConnFault{Conn: c, Window: w}, nil
}

// Package fault is the deterministic fault-injection layer: it
// perturbs a core.System run through the core.StepHook seam with the
// disturbances the robustness literature cares about — lost, delayed,
// and noisy feedback signals; transient gateway capacity degradation,
// outage, and restart; connection join/leave churn; and stuck or
// greedy sources — and hands the recorded trajectory to
// internal/recovery for time-to-reconvergence and starvation
// analysis.
//
// Everything is a pure function of the Config: the injector draws all
// entropy from one explicitly seeded generator and consumes it on a
// fixed schedule (per active fault, per connection, per step,
// independent of outcomes), so a given (system, r0, Config) triple
// always produces the same perturbed trajectory. The package is a
// deterministic kernel under ffcvet: detsource forbids ambient
// entropy and clocks here, and the zero Config is a proven identity
// (wrapped and unwrapped runs are bit-identical — see
// TestZeroConfigIsIdentity).
//
// Configs have a compact textual form (see Parse) used by the ffc
// -fault flag and round-tripped by Config.String:
//
//	seed=7,loss=0.3@100-200,outage=0@300-350,greedy=1@200-600
package fault

import (
	"fmt"
	"math"
	"strings"
)

// OutageMuFraction is the capacity floor an outage leaves a gateway:
// the queueing models require mu > 0, so a full outage scales mu by
// this fraction instead of zeroing it. At 1e-9 of nominal capacity
// every realistic load is overloaded (queues and delays go to +Inf,
// signals saturate), which is exactly the analytic picture of a dead
// gateway whose queue is unbounded.
const OutageMuFraction = 1e-9

// Window is a half-open step interval [From, To). To <= 0 means
// "unbounded": the window never closes.
type Window struct {
	From int `json:"from"`
	To   int `json:"to"`
}

// Contains reports whether step lies in the window.
func (w Window) Contains(step int) bool {
	return step >= w.From && (w.To <= 0 || step < w.To)
}

// bounded reports whether the window ever closes.
func (w Window) bounded() bool { return w.To > 0 }

func (w Window) validate(what string) error {
	if w.From < 0 {
		return fmt.Errorf("fault: %s window starts at negative step %d", what, w.From)
	}
	if w.To > 0 && w.To <= w.From {
		return fmt.Errorf("fault: %s window [%d,%d) is empty", what, w.From, w.To)
	}
	return nil
}

// whole reports whether the window is the zero value (whole run).
func (w Window) whole() bool { return w.From == 0 && w.To == 0 }

// GatewayFault is one gateway capacity fault: the gateway serves at
// Factor times its nominal rate during the window. Factor 0 is a full
// outage (see OutageMuFraction); the gateway restarts at nominal
// capacity when the window closes.
type GatewayFault struct {
	Gateway int     `json:"gateway"`
	Factor  float64 `json:"factor"`
	Window  Window  `json:"window"`
}

// ConnFault is one per-connection behavioral fault over a window:
// absence (churn), a frozen rate (stuck), or refusal to decrease
// (greedy).
type ConnFault struct {
	Conn   int    `json:"conn"`
	Window Window `json:"window"`
}

// Config is a complete fault-injection specification. The zero value
// injects nothing and is guaranteed to leave runs bit-identical to
// unhooked ones.
type Config struct {
	// Seed drives every random draw the injector makes.
	Seed int64 `json:"seed,omitempty"`

	// Loss is the per-connection, per-step probability that the
	// feedback signal is lost; a lost signal leaves the source acting
	// on the last signal it received.
	Loss       float64 `json:"loss,omitempty"`
	LossWindow Window  `json:"loss_window,omitempty"`

	// Delay delivers each connection's signal Delay steps late
	// (sources act on b_i from Delay steps ago; the run's first Delay
	// steps deliver the oldest signal seen).
	Delay       int    `json:"delay,omitempty"`
	DelayWindow Window `json:"delay_window,omitempty"`

	// Noise adds a uniform perturbation in [-Noise, +Noise] to each
	// delivered signal, clamped to [0, 1].
	Noise       float64 `json:"noise,omitempty"`
	NoiseWindow Window  `json:"noise_window,omitempty"`

	// Quantum quantizes delivered signals to multiples of Quantum —
	// the coarse-feedback (e.g. few-bit ECN) degradation.
	Quantum       float64 `json:"quantum,omitempty"`
	QuantumWindow Window  `json:"quantum_window,omitempty"`

	// RejoinRate is the rate a churned connection restarts at when its
	// absence window closes (default 0.01). Multiplicative laws have
	// an absorbing zero, so a rejoin must be seeded with some rate.
	RejoinRate float64 `json:"rejoin_rate,omitempty"`

	// Degrade lists gateway capacity faults (Factor 0 = outage).
	Degrade []GatewayFault `json:"degrade,omitempty"`
	// Churn lists connection absence windows: the connection leaves at
	// Window.From and rejoins at Window.To.
	Churn []ConnFault `json:"churn,omitempty"`
	// Stuck lists windows during which a connection's rate is frozen
	// (its control loop hangs: signals are ignored, the rate holds).
	Stuck []ConnFault `json:"stuck,omitempty"`
	// Greedy lists windows during which a connection refuses rate
	// decreases — the misbehaving source of the Theorem 5 narrative.
	Greedy []ConnFault `json:"greedy,omitempty"`
}

// Enabled reports whether the config injects anything at all.
func (c Config) Enabled() bool {
	return c.Loss > 0 || c.Delay > 0 || c.Noise > 0 || c.Quantum > 0 ||
		len(c.Degrade) > 0 || len(c.Churn) > 0 || len(c.Stuck) > 0 || len(c.Greedy) > 0
}

// Validate checks the configuration against a model with nConns
// connections and nGws gateways. Pass negative counts to skip the
// index-range checks (e.g. when validating a parsed spec before the
// topology is known).
func (c Config) Validate(nConns, nGws int) error {
	check01 := func(what string, v float64) error {
		if math.IsNaN(v) || v < 0 || v > 1 {
			return fmt.Errorf("fault: %s %v outside [0,1]", what, v)
		}
		return nil
	}
	if err := check01("loss probability", c.Loss); err != nil {
		return err
	}
	if err := check01("noise amplitude", c.Noise); err != nil {
		return err
	}
	if err := check01("signal quantum", c.Quantum); err != nil {
		return err
	}
	if c.Delay < 0 || c.Delay > 1<<20 {
		return fmt.Errorf("fault: delay %d outside [0, 2^20] steps", c.Delay)
	}
	if math.IsNaN(c.RejoinRate) || math.IsInf(c.RejoinRate, 0) || c.RejoinRate < 0 {
		return fmt.Errorf("fault: invalid rejoin rate %v", c.RejoinRate)
	}
	for _, w := range []struct {
		name string
		w    Window
	}{
		{"loss", c.LossWindow}, {"delay", c.DelayWindow},
		{"noise", c.NoiseWindow}, {"quantum", c.QuantumWindow},
	} {
		if err := w.w.validate(w.name); err != nil {
			return err
		}
	}
	for _, g := range c.Degrade {
		if g.Gateway < 0 || (nGws >= 0 && g.Gateway >= nGws) {
			return fmt.Errorf("fault: degrade gateway %d out of range [0,%d)", g.Gateway, nGws)
		}
		if err := check01("degrade factor", g.Factor); err != nil {
			return err
		}
		if err := g.Window.validate("degrade"); err != nil {
			return err
		}
	}
	for _, group := range []struct {
		name string
		cs   []ConnFault
	}{{"churn", c.Churn}, {"stuck", c.Stuck}, {"greedy", c.Greedy}} {
		for _, f := range group.cs {
			if f.Conn < 0 || (nConns >= 0 && f.Conn >= nConns) {
				return fmt.Errorf("fault: %s connection %d out of range [0,%d)", group.name, f.Conn, nConns)
			}
			if err := f.Window.validate(group.name); err != nil {
				return err
			}
		}
	}
	return nil
}

// QuietAfter returns the first step index by which every bounded
// fault window has closed, clamped to maxSteps; unbounded windows and
// whole-run faults quiet only at maxSteps. In trajectory coordinates
// this is exactly the first state index that no perturbed update can
// influence — the point recovery analysis starts measuring from.
func (c Config) QuietAfter(maxSteps int) int {
	quiet := 0
	consider := func(active bool, w Window) {
		if !active {
			return
		}
		to := maxSteps
		if w.bounded() && w.To < maxSteps {
			to = w.To
		}
		if to > quiet {
			quiet = to
		}
	}
	consider(c.Loss > 0, c.LossWindow)
	consider(c.Delay > 0, c.DelayWindow)
	consider(c.Noise > 0, c.NoiseWindow)
	consider(c.Quantum > 0, c.QuantumWindow)
	for _, g := range c.Degrade {
		consider(true, g.Window)
	}
	for _, f := range c.Churn {
		consider(true, f.Window)
	}
	for _, f := range c.Stuck {
		consider(true, f.Window)
	}
	for _, f := range c.Greedy {
		consider(true, f.Window)
	}
	if quiet > maxSteps {
		quiet = maxSteps
	}
	return quiet
}

// String renders the canonical compact spec: clauses in a fixed
// order, windows only when not whole-run, outage spelled as its own
// clause. Parse(c.String()) reproduces c for any valid config.
func (c Config) String() string {
	var parts []string
	add := func(format string, args ...interface{}) {
		parts = append(parts, fmt.Sprintf(format, args...))
	}
	win := func(w Window) string {
		if w.whole() {
			return ""
		}
		if !w.bounded() {
			return fmt.Sprintf("@%d-", w.From)
		}
		return fmt.Sprintf("@%d-%d", w.From, w.To)
	}
	if c.Seed != 0 {
		add("seed=%d", c.Seed)
	}
	if c.Loss > 0 {
		add("loss=%v%s", c.Loss, win(c.LossWindow))
	}
	if c.Delay > 0 {
		add("delay=%d%s", c.Delay, win(c.DelayWindow))
	}
	if c.Noise > 0 {
		add("noise=%v%s", c.Noise, win(c.NoiseWindow))
	}
	if c.Quantum > 0 {
		add("quantum=%v%s", c.Quantum, win(c.QuantumWindow))
	}
	if c.RejoinRate > 0 {
		add("rejoin=%v", c.RejoinRate)
	}
	for _, g := range c.Degrade {
		if g.Factor == 0 {
			add("outage=%d%s", g.Gateway, win(g.Window))
		} else {
			add("degrade=%d:%v%s", g.Gateway, g.Factor, win(g.Window))
		}
	}
	for _, f := range c.Churn {
		add("churn=%d%s", f.Conn, win(f.Window))
	}
	for _, f := range c.Stuck {
		add("stuck=%d%s", f.Conn, win(f.Window))
	}
	for _, f := range c.Greedy {
		add("greedy=%d%s", f.Conn, win(f.Window))
	}
	return strings.Join(parts, ",")
}

package fault

import (
	"fmt"

	"github.com/nettheory/feedbackflow/internal/core"
	"github.com/nettheory/feedbackflow/internal/obs"
	"github.com/nettheory/feedbackflow/internal/recovery"
)

// Result is the outcome of a perturbed run: the unperturbed baseline
// it is measured against, the faulted run itself, what was injected,
// and the recovery analysis.
type Result struct {
	// Baseline is the unperturbed run from the same initial rates; its
	// final rates are the fixed point the recovery analysis measures
	// excursions against.
	Baseline *core.RunResult
	// Perturbed is the faulted run (full horizon, trajectory recorded).
	Perturbed *core.RunResult
	// Fault is the injection accounting (spec and event counts).
	Fault *obs.FaultReport
	// Recovery is the recovery analysis of the perturbed trajectory.
	Recovery *recovery.Report
}

// Attach adds the Fault and Recovery sections to a RunReport built
// from the perturbed run.
func (res *Result) Attach(rep *obs.RunReport) {
	rep.Fault = res.Fault
	rep.Recovery = res.Recovery.Publish()
}

// RunPerturbed runs the Theorem-5-style robustness protocol on sys:
// an unperturbed baseline run to the fixed point, then a faulted run
// from the same initial rates with cfg injected, then the recovery
// analysis of the faulted trajectory against the baseline.
//
// The faulted run executes the full step horizon (convergence cannot
// end it early: the system may sit at the fixed point between fault
// windows) and records its trajectory and total-queue series for the
// analysis. opts.Hook, Record, and NoEarlyStop are owned by this
// function; set everything else (MaxSteps, Tol, Tracer, ...) freely.
func RunPerturbed(sys *core.System, r0 []float64, cfg Config, opts core.RunOptions) (*Result, error) {
	if sys == nil {
		return nil, fmt.Errorf("fault: nil system")
	}
	net := sys.Network()
	inj, err := NewInjector(cfg, net.NumConnections(), net.NumGateways())
	if err != nil {
		return nil, err
	}

	baseOpts := opts
	baseOpts.Hook = nil
	baseOpts.Record = false
	baseOpts.NoEarlyStop = false
	baseline, err := sys.Run(r0, baseOpts)
	if err != nil {
		return nil, fmt.Errorf("fault: baseline run: %w", err)
	}
	if !baseline.Converged {
		return nil, fmt.Errorf("fault: baseline run did not converge in %d steps; recovery needs a fixed point to measure against", baseline.Steps)
	}

	inj.RecordQueues = true
	pertOpts := opts
	pertOpts.Hook = inj
	pertOpts.Record = true
	pertOpts.NoEarlyStop = true
	perturbed, err := sys.Run(r0, pertOpts)
	if err != nil {
		return nil, fmt.Errorf("fault: perturbed run: %w", err)
	}

	// The injector samples the total queue at each pre-update state
	// (states 0..Steps-1); the final observation supplies state Steps,
	// aligning the series with the recorded trajectory.
	queues := append(inj.Queues(), totalQueue(perturbed.Final))

	rec, err := recovery.Analyze(perturbed.Trajectory, baseline.Rates, recovery.Options{
		QuietAfter:    cfg.QuietAfter(perturbed.Steps),
		TotalQueues:   queues,
		BaselineQueue: totalQueue(baseline.Final),
	})
	if err != nil {
		return nil, fmt.Errorf("fault: recovery analysis: %w", err)
	}

	return &Result{
		Baseline:  baseline,
		Perturbed: perturbed,
		Fault:     inj.Report(),
		Recovery:  rec,
	}, nil
}

// totalQueue sums every per-connection queue of an observation (+Inf
// when any gateway is overloaded).
func totalQueue(o *core.Observation) float64 {
	total := 0.0
	for _, row := range o.Queues {
		for _, q := range row {
			total += q
		}
	}
	return total
}

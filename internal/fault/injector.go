package fault

import (
	"fmt"
	"math"
	"math/rand"

	"github.com/nettheory/feedbackflow/internal/core"
	"github.com/nettheory/feedbackflow/internal/obs"
)

// Injector applies a Config to a run through the core.StepHook seam.
// It is deterministic: all entropy comes from one generator seeded
// with Config.Seed, and random draws happen on a fixed schedule — one
// draw per configured randomized fault, per connection, per step the
// fault's window is active, regardless of whether the draw fires — so
// two runs with equal (system, r0, Config) are bit-identical.
//
// An Injector carries per-run state (delay lines, counters) and must
// not be shared between runs or goroutines; build a fresh one per run
// with NewInjector.
type Injector struct {
	cfg    Config
	nConns int
	rng    *rand.Rand

	// Loss state: the last signal/delay actually delivered to each
	// connection, substituted when a fresh signal is lost.
	lastSig, lastDelay []float64
	everDelivered      []bool

	// Delay lines: ring buffers of the last cfg.Delay emitted
	// (signal, delay) pairs per connection, indexed [conn][step%Delay].
	delaySig, delayDelay [][]float64

	// RecordQueues, when set before the run, makes the injector sample
	// the total queued load Σ_a Σ_k Q^a_k at every step (one entry per
	// applied update); Queues returns the series. RunPerturbed uses it
	// to feed recovery.Options.TotalQueues.
	RecordQueues bool
	queues       []float64

	rep obs.FaultReport
}

var _ core.StepHook = (*Injector)(nil)

// NewInjector validates cfg against the model shape and builds the
// per-run injector state.
func NewInjector(cfg Config, nConns, nGws int) (*Injector, error) {
	if nConns <= 0 || nGws <= 0 {
		return nil, fmt.Errorf("fault: model with %d connections and %d gateways", nConns, nGws)
	}
	if err := cfg.Validate(nConns, nGws); err != nil {
		return nil, err
	}
	inj := &Injector{
		cfg:    cfg,
		nConns: nConns,
		rng:    rand.New(rand.NewSource(cfg.Seed)),
	}
	if cfg.Loss > 0 {
		inj.lastSig = make([]float64, nConns)
		inj.lastDelay = make([]float64, nConns)
		inj.everDelivered = make([]bool, nConns)
	}
	if cfg.Delay > 0 {
		inj.delaySig = make([][]float64, nConns)
		inj.delayDelay = make([][]float64, nConns)
		for i := 0; i < nConns; i++ {
			inj.delaySig[i] = make([]float64, cfg.Delay)
			inj.delayDelay[i] = make([]float64, cfg.Delay)
		}
	}
	return inj, nil
}

// BeginStep scales the effective service rates of gateways whose
// degradation or outage windows are active.
func (inj *Injector) BeginStep(step int, mu []float64) {
	for _, g := range inj.cfg.Degrade {
		if !g.Window.Contains(step) {
			continue
		}
		if g.Factor == 0 {
			mu[g.Gateway] *= OutageMuFraction
			inj.rep.OutageSteps++
		} else {
			mu[g.Gateway] *= g.Factor
			inj.rep.DegradedSteps++
		}
	}
}

// PerturbObservation degrades the feedback each connection receives:
// quantization, additive noise, delivery delay, and loss, applied in
// that order per connection (the order a signal experiences them on
// its way from the gateway to the source: a coarse reading, channel
// noise, transit delay, and finally whether it arrives at all).
func (inj *Injector) PerturbObservation(step int, r []float64, o *core.Observation) {
	c := &inj.cfg
	quantize := c.Quantum > 0 && c.QuantumWindow.Contains(step)
	noise := c.Noise > 0 && c.NoiseWindow.Contains(step)
	delay := c.Delay > 0 && c.DelayWindow.Contains(step)
	loss := c.Loss > 0 && c.LossWindow.Contains(step)

	for i := 0; i < inj.nConns; i++ {
		sig, del := o.Signals[i], o.Delays[i]
		if quantize {
			sig = clamp01(math.Round(sig/c.Quantum) * c.Quantum)
			inj.rep.SignalsNoised++
		}
		if noise {
			// Fixed draw schedule: one uniform per connection per
			// active step, consumed whether or not it moves the signal.
			u := inj.rng.Float64()
			sig = clamp01(sig + (2*u-1)*c.Noise)
			inj.rep.SignalsNoised++
		}
		if c.Delay > 0 {
			// The delay line records every emission so that a window
			// opening mid-run has history to serve from.
			slot := step % c.Delay
			oldSig, oldDelay := inj.delaySig[i][slot], inj.delayDelay[i][slot]
			inj.delaySig[i][slot], inj.delayDelay[i][slot] = sig, del
			if delay && step >= c.Delay {
				sig, del = oldSig, oldDelay
				inj.rep.SignalsDelayed++
			}
		}
		if loss {
			u := inj.rng.Float64()
			if u < c.Loss && inj.everDelivered[i] {
				sig, del = inj.lastSig[i], inj.lastDelay[i]
				inj.rep.SignalsLost++
			} else {
				inj.lastSig[i], inj.lastDelay[i] = sig, del
				inj.everDelivered[i] = true
			}
		} else if c.Loss > 0 {
			// Outside the loss window every signal is delivered; keep
			// the hold-over state fresh for the next window.
			inj.lastSig[i], inj.lastDelay[i] = sig, del
			inj.everDelivered[i] = true
		}
		o.Signals[i], o.Delays[i] = sig, del
	}

	if inj.RecordQueues {
		total := 0.0
		for _, row := range o.Queues {
			for _, q := range row {
				total += q
			}
		}
		inj.queues = append(inj.queues, total)
	}
}

// PerturbNext applies source-behavior faults to the tentative next
// state: stuck sources hold their rate, greedy sources refuse
// decreases, and churned connections are pinned to zero until their
// window closes, then restarted at the rejoin rate.
func (inj *Injector) PerturbNext(step int, r, next []float64) {
	for _, f := range inj.cfg.Stuck {
		if f.Window.Contains(step) {
			next[f.Conn] = r[f.Conn]
			inj.rep.StuckSteps++
		}
	}
	for _, f := range inj.cfg.Greedy {
		if f.Window.Contains(step) && next[f.Conn] < r[f.Conn] {
			next[f.Conn] = r[f.Conn]
			inj.rep.GreedySteps++
		}
	}
	// Churn runs last so absence wins over the behavioral faults.
	rejoin := inj.cfg.RejoinRate
	if rejoin <= 0 {
		rejoin = 0.01
	}
	for _, f := range inj.cfg.Churn {
		switch {
		case f.Window.Contains(step):
			next[f.Conn] = 0
			inj.rep.ChurnedSteps++
		case f.Window.bounded() && step == f.Window.To:
			// First step after the absence: restart the source.
			// Multiplicative-decrease laws have an absorbing zero, so
			// the rejoin must seed a positive rate.
			if next[f.Conn] < rejoin {
				next[f.Conn] = rejoin
			}
		}
	}
}

// Queues returns the recorded total-queue series (one sample per
// applied update; nil unless RecordQueues was set).
func (inj *Injector) Queues() []float64 { return inj.queues }

// Report returns the injection accounting for the run so far.
func (inj *Injector) Report() *obs.FaultReport {
	rep := inj.rep
	rep.Spec = inj.cfg.String()
	return &rep
}

func clamp01(v float64) float64 {
	if v < 0 {
		return 0
	}
	if v > 1 {
		return 1
	}
	return v
}

package fault

import (
	"reflect"
	"strings"
	"testing"
)

func TestParseFullSpec(t *testing.T) {
	cfg, err := Parse("seed=7,loss=0.3@100-200,delay=4,noise=0.05@50-,quantum=0.25,rejoin=0.02,degrade=1:0.5@10-20,outage=0@300-350,churn=2@40-80,stuck=0@5-15,greedy=1@200-600")
	if err != nil {
		t.Fatal(err)
	}
	want := Config{
		Seed:       7,
		Loss:       0.3,
		LossWindow: Window{From: 100, To: 200},
		Delay:      4,
		Noise:      0.05, NoiseWindow: Window{From: 50},
		Quantum:    0.25,
		RejoinRate: 0.02,
		Degrade: []GatewayFault{
			{Gateway: 1, Factor: 0.5, Window: Window{From: 10, To: 20}},
			{Gateway: 0, Factor: 0, Window: Window{From: 300, To: 350}},
		},
		Churn:  []ConnFault{{Conn: 2, Window: Window{From: 40, To: 80}}},
		Stuck:  []ConnFault{{Conn: 0, Window: Window{From: 5, To: 15}}},
		Greedy: []ConnFault{{Conn: 1, Window: Window{From: 200, To: 600}}},
	}
	if !reflect.DeepEqual(cfg, want) {
		t.Fatalf("Parse =\n%+v\nwant\n%+v", cfg, want)
	}
}

func TestParseDefaults(t *testing.T) {
	cfg, err := Parse("loss=0.5")
	if err != nil {
		t.Fatal(err)
	}
	if cfg.Seed != 1 || cfg.RejoinRate != 0.01 {
		t.Fatalf("defaults not applied: seed=%d rejoin=%v", cfg.Seed, cfg.RejoinRate)
	}
}

func TestParseEmptyAndNoopSpecs(t *testing.T) {
	for _, spec := range []string{"", "  ", "seed=9", "seed=9,rejoin=0.5", "loss=0", "delay=0@5-10", "noise=0,quantum=0"} {
		cfg, err := Parse(spec)
		if err != nil {
			t.Fatalf("Parse(%q): %v", spec, err)
		}
		if !reflect.DeepEqual(cfg, Config{}) {
			t.Errorf("Parse(%q) = %+v, want the zero config", spec, cfg)
		}
	}
}

func TestParseErrors(t *testing.T) {
	cases := []struct{ spec, wantSub string }{
		{"loss", "key=value"},
		{"=0.5", "key=value"},
		{"loss=", "key=value"},
		{"frobnicate=1", "unknown clause"},
		{"loss=1.5", "[0,1]"},
		{"loss=-0.1", "[0,1]"},
		{"loss=NaN", "[0,1]"},
		{"loss=Inf", "[0,1]"},
		{"delay=-3", "delay"},
		{"delay=9999999999", "delay"},
		{"seed=abc", "seed"},
		{"seed=1@5-10", "window"},
		{"rejoin=0", "rejoin"},
		{"rejoin=-1", "rejoin"},
		{"rejoin=0.5@1-2", "window"},
		{"degrade=1", "gateway:factor"},
		{"degrade=x:0.5", "non-negative integer"},
		{"degrade=1:2", "[0,1]"},
		{"outage=-1", "non-negative integer"},
		{"churn=1.5", "non-negative integer"},
		{"stuck=0@10", "from-to"},
		{"greedy=0@5-5", "empty"},
		{"greedy=0@9-5", "empty"},
		{"loss=0.5@-3-4", "non-negative integer"},
	}
	for _, c := range cases {
		_, err := Parse(c.spec)
		if err == nil {
			t.Errorf("Parse(%q) accepted", c.spec)
			continue
		}
		if !strings.Contains(err.Error(), c.wantSub) {
			t.Errorf("Parse(%q) error %q does not mention %q", c.spec, err, c.wantSub)
		}
	}
}

func TestStringParseRoundTrip(t *testing.T) {
	specs := []string{
		"seed=7,loss=0.3@100-200,outage=0@300-350,greedy=1@200-600",
		"loss=1",
		"seed=-4,delay=12@5-,noise=0.001,quantum=0.125,rejoin=1",
		"degrade=0:0.25,degrade=0:0.75@9-11,outage=2@4-8,churn=0@1-2,churn=0@6-7,stuck=3,greedy=3@2-",
	}
	for _, spec := range specs {
		cfg, err := Parse(spec)
		if err != nil {
			t.Fatalf("Parse(%q): %v", spec, err)
		}
		again, err := Parse(cfg.String())
		if err != nil {
			t.Fatalf("Parse(String(%q)) = Parse(%q): %v", spec, cfg.String(), err)
		}
		if !reflect.DeepEqual(cfg, again) {
			t.Errorf("round trip of %q:\nfirst  %+v\nsecond %+v (via %q)", spec, cfg, again, cfg.String())
		}
	}
}

// FuzzParse is the parser's safety net: any input either fails
// cleanly or yields a config that validates and survives a
// String/Parse round trip bit-for-bit.
func FuzzParse(f *testing.F) {
	seeds := []string{
		"",
		"seed=7,loss=0.3@100-200,outage=0@300-350,greedy=1@200-600",
		"loss=0.5,delay=3,noise=0.01,quantum=0.25",
		"degrade=1:0.5@10-20,churn=2@40-80,stuck=0@5-15",
		"rejoin=0.02,churn=1@3-9",
		"loss=1@0-1",
		"seed=-9223372036854775808",
		"loss=0.5@@",
		"outage=0@1-,outage=0@1-",
		"delay=1048576",
		"noise=1e-300",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, spec string) {
		cfg, err := Parse(spec)
		if err != nil {
			return
		}
		if err := cfg.Validate(-1, -1); err != nil {
			t.Fatalf("Parse(%q) accepted an invalid config: %v", spec, err)
		}
		rendered := cfg.String()
		again, err := Parse(rendered)
		if err != nil {
			t.Fatalf("Parse(%q) ok but its String %q does not re-parse: %v", spec, rendered, err)
		}
		if !reflect.DeepEqual(cfg, again) {
			t.Fatalf("round trip of %q via %q:\nfirst  %+v\nsecond %+v", spec, rendered, cfg, again)
		}
	})
}

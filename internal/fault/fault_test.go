package fault_test

import (
	"math"
	"math/rand"
	"testing"

	"github.com/nettheory/feedbackflow/internal/control"
	"github.com/nettheory/feedbackflow/internal/core"
	"github.com/nettheory/feedbackflow/internal/fault"
	"github.com/nettheory/feedbackflow/internal/obs"
	"github.com/nettheory/feedbackflow/internal/queueing"
	"github.com/nettheory/feedbackflow/internal/signal"
	"github.com/nettheory/feedbackflow/internal/topology"
)

// twoConnSystem builds the standard two-connection single-gateway
// test model: additive-increase time-and-signal laws over Fair Share
// with individual feedback, which converges to a unique fixed point.
func twoConnSystem(t *testing.T) *core.System {
	t.Helper()
	net, err := topology.SingleGateway(2, 1.0, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	laws := []control.Law{
		control.AdditiveTSI{Eta: 0.1, BSS: 0.5},
		control.AdditiveTSI{Eta: 0.1, BSS: 0.5},
	}
	sys, err := core.NewSystem(net, queueing.FairShare{}, signal.Individual, signal.Rational{}, laws)
	if err != nil {
		t.Fatal(err)
	}
	return sys
}

func mustInjector(t *testing.T, cfg fault.Config, nConns, nGws int) *fault.Injector {
	t.Helper()
	inj, err := fault.NewInjector(cfg, nConns, nGws)
	if err != nil {
		t.Fatal(err)
	}
	return inj
}

// TestZeroConfigIsIdentity is the acceptance property: across
// randomized topologies, disciplines, and styles, a run hooked with a
// zero-config injector is bit-identical to an unhooked run.
func TestZeroConfigIsIdentity(t *testing.T) {
	rng := rand.New(rand.NewSource(33))
	disciplines := []queueing.Discipline{queueing.FIFO{}, queueing.FairShare{}}
	styles := []signal.Style{signal.Aggregate, signal.Individual}
	for trial := 0; trial < 10; trial++ {
		nGws := 2 + rng.Intn(3)
		net, err := topology.Random(rng, nGws, 2+rng.Intn(4), 1+rng.Intn(nGws), 0.8, 1.5, 0.05)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		n := net.NumConnections()
		laws := make([]control.Law, n)
		for i := range laws {
			laws[i] = control.AdditiveTSI{Eta: 0.05 + 0.1*rng.Float64(), BSS: 0.3 + 0.4*rng.Float64()}
		}
		sys, err := core.NewSystem(net, disciplines[rng.Intn(2)], styles[rng.Intn(2)], signal.Rational{}, laws)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		r0 := make([]float64, n)
		for i := range r0 {
			r0[i] = 0.01 + 0.2*rng.Float64()
		}
		opt := core.RunOptions{MaxSteps: 250, Record: true}
		plain, err := sys.Run(r0, opt)
		if err != nil {
			t.Fatalf("trial %d plain: %v", trial, err)
		}
		opt.Hook = mustInjector(t, fault.Config{}, n, nGws)
		hooked, err := sys.Run(r0, opt)
		if err != nil {
			t.Fatalf("trial %d hooked: %v", trial, err)
		}
		if plain.Steps != hooked.Steps || plain.Converged != hooked.Converged {
			t.Fatalf("trial %d: steps %d vs %d, converged %v vs %v",
				trial, plain.Steps, hooked.Steps, plain.Converged, hooked.Converged)
		}
		for k := range plain.Trajectory {
			for i := range plain.Trajectory[k] {
				if plain.Trajectory[k][i] != hooked.Trajectory[k][i] {
					t.Fatalf("trial %d: trajectory[%d][%d] = %v vs %v",
						trial, k, i, plain.Trajectory[k][i], hooked.Trajectory[k][i])
				}
			}
		}
	}
}

// TestInjectorDeterminism pins the seeding contract: equal configs
// give bit-identical perturbed trajectories; a different seed moves
// the noise.
func TestInjectorDeterminism(t *testing.T) {
	sys := twoConnSystem(t)
	r0 := []float64{0.2, 0.3}
	cfg, err := fault.Parse("seed=5,loss=0.3,noise=0.05")
	if err != nil {
		t.Fatal(err)
	}
	run := func(c fault.Config) *core.RunResult {
		res, err := sys.Run(r0, core.RunOptions{
			MaxSteps: 200, Record: true, NoEarlyStop: true,
			Hook: mustInjector(t, c, 2, 1),
		})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a, b := run(cfg), run(cfg)
	for k := range a.Trajectory {
		for i := range a.Trajectory[k] {
			if a.Trajectory[k][i] != b.Trajectory[k][i] {
				t.Fatalf("same config diverged at trajectory[%d][%d]: %v vs %v",
					k, i, a.Trajectory[k][i], b.Trajectory[k][i])
			}
		}
	}
	cfg2 := cfg
	cfg2.Seed = 6
	c := run(cfg2)
	same := true
	for k := range a.Trajectory {
		for i := range a.Trajectory[k] {
			if a.Trajectory[k][i] != c.Trajectory[k][i] {
				same = false
			}
		}
	}
	if same {
		t.Fatal("different seeds produced an identical perturbed trajectory")
	}
}

// TestLossHoldsLastSignal: with certain loss inside a window, sources
// keep acting on the pre-window signal, so the trajectory differs
// from the unperturbed one during the window.
func TestLossHoldsLastSignal(t *testing.T) {
	sys := twoConnSystem(t)
	r0 := []float64{0.2, 0.3}
	cfg := fault.Config{Seed: 1, Loss: 1, LossWindow: fault.Window{From: 5, To: 40}}
	inj := mustInjector(t, cfg, 2, 1)
	res, err := sys.Run(r0, core.RunOptions{MaxSteps: 60, Record: true, NoEarlyStop: true, Hook: inj})
	if err != nil {
		t.Fatal(err)
	}
	plain, err := sys.Run(r0, core.RunOptions{MaxSteps: 60, Record: true, NoEarlyStop: true})
	if err != nil {
		t.Fatal(err)
	}
	// States up to the window open are untouched...
	for k := 0; k <= 5; k++ {
		for i := range r0 {
			if res.Trajectory[k][i] != plain.Trajectory[k][i] {
				t.Fatalf("pre-window state %d differs", k)
			}
		}
	}
	// ...and the frozen feedback moves the in-window dynamics.
	diverged := false
	for k := 6; k <= 40 && !diverged; k++ {
		for i := range r0 {
			if res.Trajectory[k][i] != plain.Trajectory[k][i] {
				diverged = true
			}
		}
	}
	if !diverged {
		t.Fatal("certain loss did not change the in-window dynamics")
	}
	rep := inj.Report()
	// 2 connections × 35 window steps: the pre-window deliveries seed
	// the hold-over state, so every in-window signal counts as lost.
	if rep.SignalsLost != 2*35 {
		t.Fatalf("SignalsLost = %d, want %d", rep.SignalsLost, 2*35)
	}
}

// TestDelayShiftsFeedback: a delayed signal line must deliver the
// observation from Delay steps earlier once primed.
func TestDelayShiftsFeedback(t *testing.T) {
	sys := twoConnSystem(t)
	r0 := []float64{0.2, 0.3}
	inj := mustInjector(t, fault.Config{Seed: 1, Delay: 3}, 2, 1)
	res, err := sys.Run(r0, core.RunOptions{MaxSteps: 80, Record: true, NoEarlyStop: true, Hook: inj})
	if err != nil {
		t.Fatal(err)
	}
	plain, err := sys.Run(r0, core.RunOptions{MaxSteps: 80, Record: true, NoEarlyStop: true})
	if err != nil {
		t.Fatal(err)
	}
	diverged := false
	for k := range res.Trajectory {
		for i := range r0 {
			if res.Trajectory[k][i] != plain.Trajectory[k][i] {
				diverged = true
			}
		}
	}
	if !diverged {
		t.Fatal("delayed feedback did not change the dynamics")
	}
	if got, want := inj.Report().SignalsDelayed, int64(2*(80-3)); got != want {
		t.Fatalf("SignalsDelayed = %d, want %d", got, want)
	}
}

// TestOutageOverloadsGateway: during an outage window the effective
// capacity collapses, so queues and delays blow up to +Inf.
func TestOutageOverloadsGateway(t *testing.T) {
	sys := twoConnSystem(t)
	r0 := []float64{0.2, 0.3}
	inj := mustInjector(t, fault.Config{
		Seed:    1,
		Degrade: []fault.GatewayFault{{Gateway: 0, Factor: 0, Window: fault.Window{From: 10, To: 20}}},
	}, 2, 1)
	inj.RecordQueues = true
	_, err := sys.Run(r0, core.RunOptions{MaxSteps: 40, NoEarlyStop: true, Hook: inj})
	if err != nil {
		t.Fatal(err)
	}
	queues := inj.Queues()
	if len(queues) != 40 {
		t.Fatalf("recorded %d queue samples, want 40", len(queues))
	}
	sawInf := false
	for k := 10; k < 20; k++ {
		if math.IsInf(queues[k], 1) {
			sawInf = true
		}
	}
	if !sawInf {
		t.Fatal("outage never produced an infinite queue")
	}
	for k := 0; k < 10; k++ {
		if math.IsInf(queues[k], 1) {
			t.Fatalf("pre-outage step %d already overloaded", k)
		}
	}
	rep := inj.Report()
	if rep.OutageSteps != 10 || rep.DegradedSteps != 0 {
		t.Fatalf("outage/degraded steps = %d/%d, want 10/0", rep.OutageSteps, rep.DegradedSteps)
	}
}

// TestChurnLeavesAndRejoins: a churned connection is pinned to zero
// for the window, restarts at the rejoin rate, and climbs back.
func TestChurnLeavesAndRejoins(t *testing.T) {
	sys := twoConnSystem(t)
	r0 := []float64{0.2, 0.3}
	cfg := fault.Config{Seed: 1, RejoinRate: 0.05, Churn: []fault.ConnFault{{Conn: 1, Window: fault.Window{From: 10, To: 30}}}}
	inj := mustInjector(t, cfg, 2, 1)
	res, err := sys.Run(r0, core.RunOptions{MaxSteps: 400, Record: true, NoEarlyStop: true, Hook: inj})
	if err != nil {
		t.Fatal(err)
	}
	for k := 11; k <= 30; k++ {
		if res.Trajectory[k][1] != 0 {
			t.Fatalf("state %d: churned connection at rate %v, want 0", k, res.Trajectory[k][1])
		}
	}
	if got := res.Trajectory[31][1]; got < 0.05 {
		t.Fatalf("rejoin state rate %v, want at least the rejoin rate 0.05", got)
	}
	if end := res.Rates[1]; end < 0.2 {
		t.Fatalf("churned connection never recovered: final rate %v", end)
	}
	if got := inj.Report().ChurnedSteps; got != 20 {
		t.Fatalf("ChurnedSteps = %d, want 20", got)
	}
}

// TestStuckFreezesRate: a stuck source holds its rate through the
// window no matter what the feedback says.
func TestStuckFreezesRate(t *testing.T) {
	sys := twoConnSystem(t)
	r0 := []float64{0.2, 0.3}
	inj := mustInjector(t, fault.Config{Seed: 1, Stuck: []fault.ConnFault{{Conn: 0, Window: fault.Window{From: 0, To: 25}}}}, 2, 1)
	res, err := sys.Run(r0, core.RunOptions{MaxSteps: 50, Record: true, NoEarlyStop: true, Hook: inj})
	if err != nil {
		t.Fatal(err)
	}
	for k := 0; k <= 25; k++ {
		if res.Trajectory[k][0] != 0.2 {
			t.Fatalf("state %d: stuck connection at %v, want 0.2", k, res.Trajectory[k][0])
		}
	}
	if res.Trajectory[50][0] == 0.2 {
		t.Fatal("stuck connection never moved after the window closed")
	}
}

// TestGreedyRefusesDecreases: a greedy source's rate is monotone
// non-decreasing inside its window.
func TestGreedyRefusesDecreases(t *testing.T) {
	sys := twoConnSystem(t)
	r0 := []float64{0.6, 0.6} // overloaded start: the laws want decreases
	inj := mustInjector(t, fault.Config{Seed: 1, Greedy: []fault.ConnFault{{Conn: 0, Window: fault.Window{From: 0, To: 100}}}}, 2, 1)
	res, err := sys.Run(r0, core.RunOptions{MaxSteps: 100, Record: true, NoEarlyStop: true, Hook: inj})
	if err != nil {
		t.Fatal(err)
	}
	for k := 1; k <= 100; k++ {
		if res.Trajectory[k][0] < res.Trajectory[k-1][0] {
			t.Fatalf("greedy connection decreased at state %d: %v -> %v",
				k, res.Trajectory[k-1][0], res.Trajectory[k][0])
		}
	}
	if inj.Report().GreedySteps == 0 {
		t.Fatal("no decrease was ever refused despite the overloaded start")
	}
	// The well-behaved peer pays for it.
	if !(res.Rates[1] < res.Rates[0]) {
		t.Fatalf("well-behaved rate %v not below greedy rate %v", res.Rates[1], res.Rates[0])
	}
}

// TestRunPerturbedReconverges is the end-to-end tentpole check: after
// a transient outage plus a lossy-feedback window, Fair Share with
// individual feedback returns to its unperturbed fixed point, and the
// report says so.
func TestRunPerturbedReconverges(t *testing.T) {
	sys := twoConnSystem(t)
	r0 := []float64{0.2, 0.3}
	cfg, err := fault.Parse("seed=3,loss=0.5@50-120,outage=0@150-170")
	if err != nil {
		t.Fatal(err)
	}
	res, err := fault.RunPerturbed(sys, r0, cfg, core.RunOptions{MaxSteps: 2000})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Baseline.Converged {
		t.Fatal("baseline did not converge")
	}
	if res.Perturbed.Steps != 2000 {
		t.Fatalf("perturbed run took %d steps, want the full horizon", res.Perturbed.Steps)
	}
	rec := res.Recovery
	if !rec.Reconverged {
		t.Fatalf("did not reconverge: final distance %v", rec.FinalDistance)
	}
	if rec.ReconvergeStep < 170 {
		t.Fatalf("reconverged at %d, inside the fault horizon", rec.ReconvergeStep)
	}
	if rec.MaxRateExcursion <= 0 {
		t.Fatal("no rate excursion recorded despite an outage")
	}
	if !math.IsInf(rec.MaxQueueExcursion, 1) {
		t.Fatalf("MaxQueueExcursion = %v, want +Inf from the outage", rec.MaxQueueExcursion)
	}
	if res.Fault.OutageSteps != 20 || res.Fault.SignalsLost == 0 {
		t.Fatalf("fault accounting: outage %d, lost %d", res.Fault.OutageSteps, res.Fault.SignalsLost)
	}
	if res.Fault.Spec != cfg.String() {
		t.Fatalf("report spec %q, want %q", res.Fault.Spec, cfg.String())
	}
}

// TestRunPerturbedAttach wires the result into a RunReport.
func TestRunPerturbedAttach(t *testing.T) {
	sys := twoConnSystem(t)
	cfg, err := fault.Parse("seed=2,noise=0.02@10-30")
	if err != nil {
		t.Fatal(err)
	}
	res, err := fault.RunPerturbed(sys, []float64{0.2, 0.3}, cfg, core.RunOptions{MaxSteps: 600})
	if err != nil {
		t.Fatal(err)
	}
	report := &obs.RunReport{Schema: obs.RunReportSchema}
	res.Attach(report)
	if report.Fault == nil || report.Fault.Spec != cfg.String() {
		t.Fatal("fault section not attached")
	}
	if report.Recovery == nil || !report.Recovery.Reconverged {
		t.Fatal("recovery section not attached or not reconverged")
	}
}

// TestNewInjectorRejectsBadShapes pins index validation against the
// model shape.
func TestNewInjectorRejectsBadShapes(t *testing.T) {
	if _, err := fault.NewInjector(fault.Config{}, 0, 1); err == nil {
		t.Error("zero connections accepted")
	}
	if _, err := fault.NewInjector(fault.Config{Degrade: []fault.GatewayFault{{Gateway: 2, Factor: 0.5}}}, 2, 2); err == nil {
		t.Error("out-of-range gateway accepted")
	}
	if _, err := fault.NewInjector(fault.Config{Churn: []fault.ConnFault{{Conn: 5}}}, 2, 1); err == nil {
		t.Error("out-of-range connection accepted")
	}
	if _, err := fault.NewInjector(fault.Config{Loss: 1.5}, 2, 1); err == nil {
		t.Error("out-of-range loss probability accepted")
	}
}

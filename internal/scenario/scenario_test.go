package scenario

import (
	"math"
	"strings"
	"testing"

	"github.com/nettheory/feedbackflow/internal/core"
)

const validJSON = `{
  "name": "two-bottleneck",
  "discipline": "fairshare",
  "feedback": "individual",
  "gateways": [
    {"name": "A", "mu": 1.0, "latency": 0.1},
    {"name": "B", "mu": 2.0, "latency": 0.1}
  ],
  "connections": [
    {"path": ["A", "B"], "law": {"kind": "additive", "eta": 0.05, "bss": 0.5}},
    {"path": ["A"],      "law": {"kind": "additive", "eta": 0.05, "bss": 0.5}},
    {"path": ["B"],      "law": {"kind": "additive", "eta": 0.05, "bss": 0.5}}
  ]
}`

func TestLoadAndBuild(t *testing.T) {
	spec, err := Load(strings.NewReader(validJSON))
	if err != nil {
		t.Fatal(err)
	}
	if spec.Name != "two-bottleneck" {
		t.Errorf("name = %q", spec.Name)
	}
	sys, r0, err := spec.Build()
	if err != nil {
		t.Fatal(err)
	}
	if sys.Network().NumGateways() != 2 || sys.Network().NumConnections() != 3 {
		t.Fatalf("built shape %d/%d", sys.Network().NumGateways(), sys.Network().NumConnections())
	}
	if len(r0) != 3 {
		t.Fatalf("initial rates %v", r0)
	}
	// Default start: 1% of the first gateway's rate.
	if math.Abs(r0[0]-0.01) > 1e-12 || math.Abs(r0[2]-0.02) > 1e-12 {
		t.Errorf("default initial rates %v", r0)
	}
}

func TestEndToEndRun(t *testing.T) {
	spec, err := Load(strings.NewReader(validJSON))
	if err != nil {
		t.Fatal(err)
	}
	sys, r0, err := spec.Build()
	if err != nil {
		t.Fatal(err)
	}
	res, err := sys.Run(r0, core.RunOptions{MaxSteps: 200000})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Fatal("scenario did not converge")
	}
	// Individual feedback on this topology: long and crossA share the
	// bottleneck A (capacity 0.5), crossB picks up the slack at B.
	if math.Abs(res.Rates[0]-0.25) > 1e-4 || math.Abs(res.Rates[1]-0.25) > 1e-4 {
		t.Errorf("bottleneck-A rates %v, want 0.25 each", res.Rates[:2])
	}
	if math.Abs(res.Rates[2]-0.75) > 1e-4 {
		t.Errorf("crossB rate %v, want 0.75", res.Rates[2])
	}
}

func TestLoadRejectsUnknownFields(t *testing.T) {
	if _, err := Load(strings.NewReader(`{"nam": "typo"}`)); err == nil {
		t.Error("unknown field should fail")
	}
	if _, err := Load(strings.NewReader(`not json`)); err == nil {
		t.Error("garbage should fail")
	}
}

func TestBuildValidation(t *testing.T) {
	cases := []struct {
		name string
		json string
	}{
		{"no gateways", `{"connections": [{"path": ["A"]}]}`},
		{"no connections", `{"gateways": [{"name": "A", "mu": 1}]}`},
		{"empty gateway name", `{"gateways": [{"name": "", "mu": 1}], "connections": [{"path": [""]}]}`},
		{"duplicate gateway", `{"gateways": [{"name": "A", "mu": 1}, {"name": "A", "mu": 2}], "connections": [{"path": ["A"]}]}`},
		{"unknown gateway in path", `{"gateways": [{"name": "A", "mu": 1}], "connections": [{"path": ["B"]}]}`},
		{"bad mu", `{"gateways": [{"name": "A", "mu": 0}], "connections": [{"path": ["A"]}]}`},
		{"bad law kind", `{"gateways": [{"name": "A", "mu": 1}], "connections": [{"path": ["A"], "law": {"kind": "quantum"}}]}`},
		{"bad discipline", `{"discipline": "lifo", "gateways": [{"name": "A", "mu": 1}], "connections": [{"path": ["A"], "law": {"eta": 0.1, "bss": 0.5}}]}`},
		{"bad feedback", `{"feedback": "gossip", "gateways": [{"name": "A", "mu": 1}], "connections": [{"path": ["A"], "law": {"eta": 0.1, "bss": 0.5}}]}`},
		{"bad signal", `{"signal": {"kind": "sigmoid"}, "gateways": [{"name": "A", "mu": 1}], "connections": [{"path": ["A"], "law": {"eta": 0.1, "bss": 0.5}}]}`},
		{"power signal no k", `{"signal": {"kind": "power"}, "gateways": [{"name": "A", "mu": 1}], "connections": [{"path": ["A"], "law": {"eta": 0.1, "bss": 0.5}}]}`},
		{"exponential no theta", `{"signal": {"kind": "exponential"}, "gateways": [{"name": "A", "mu": 1}], "connections": [{"path": ["A"], "law": {"eta": 0.1, "bss": 0.5}}]}`},
		{"binary no threshold", `{"signal": {"kind": "binary"}, "gateways": [{"name": "A", "mu": 1}], "connections": [{"path": ["A"], "law": {"eta": 0.1, "bss": 0.5}}]}`},
		{"initial length mismatch", `{"initial": [0.1], "gateways": [{"name": "A", "mu": 1}], "connections": [{"path": ["A"], "law": {"eta": 0.1, "bss": 0.5}}, {"path": ["A"], "law": {"eta": 0.1, "bss": 0.5}}]}`},
	}
	for _, c := range cases {
		spec, err := Load(strings.NewReader(c.json))
		if err != nil {
			continue // parse-level rejection is fine too
		}
		if _, _, err := spec.Build(); err == nil {
			t.Errorf("%s: want build error", c.name)
		}
	}
}

func TestAllLawAndSignalKinds(t *testing.T) {
	js := `{
	  "discipline": "fifo",
	  "feedback": "aggregate",
	  "signal": {"kind": "exponential", "theta": 2},
	  "gateways": [{"name": "G", "mu": 1}],
	  "connections": [
	    {"path": ["G"], "law": {"kind": "additive", "eta": 0.1, "bss": 0.5}},
	    {"path": ["G"], "law": {"kind": "multiplicative", "eta": 0.1, "bss": 0.5}},
	    {"path": ["G"], "law": {"kind": "power", "eta": 0.1, "bss": 0.5, "p": 1}},
	    {"path": ["G"], "law": {"kind": "fairrate", "eta": 0.1, "beta": 0.5}},
	    {"path": ["G"], "law": {"kind": "window", "eta": 0.1, "beta": 0.5}}
	  ]
	}`
	spec, err := Load(strings.NewReader(js))
	if err != nil {
		t.Fatal(err)
	}
	sys, r0, err := spec.Build()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sys.Step(r0); err != nil {
		t.Fatal(err)
	}
}

func TestExplicitInitialAndMaxSteps(t *testing.T) {
	js := `{
	  "gateways": [{"name": "G", "mu": 1}],
	  "connections": [{"path": ["G"], "law": {"eta": 0.1, "bss": 0.5}}],
	  "initial": [0.3],
	  "maxSteps": 77
	}`
	spec, err := Load(strings.NewReader(js))
	if err != nil {
		t.Fatal(err)
	}
	_, r0, err := spec.Build()
	if err != nil {
		t.Fatal(err)
	}
	if r0[0] != 0.3 {
		t.Errorf("initial = %v", r0)
	}
	if spec.RunOptions().MaxSteps != 77 {
		t.Errorf("maxSteps = %d", spec.RunOptions().MaxSteps)
	}
}

package scenario

import (
	"math"
	"strings"
	"testing"

	"github.com/nettheory/feedbackflow/internal/core"
)

const validJSON = `{
  "name": "two-bottleneck",
  "discipline": "fairshare",
  "feedback": "individual",
  "gateways": [
    {"name": "A", "mu": 1.0, "latency": 0.1},
    {"name": "B", "mu": 2.0, "latency": 0.1}
  ],
  "connections": [
    {"path": ["A", "B"], "law": {"kind": "additive", "eta": 0.05, "bss": 0.5}},
    {"path": ["A"],      "law": {"kind": "additive", "eta": 0.05, "bss": 0.5}},
    {"path": ["B"],      "law": {"kind": "additive", "eta": 0.05, "bss": 0.5}}
  ]
}`

func TestLoadAndBuild(t *testing.T) {
	spec, err := Load(strings.NewReader(validJSON))
	if err != nil {
		t.Fatal(err)
	}
	if spec.Name != "two-bottleneck" {
		t.Errorf("name = %q", spec.Name)
	}
	sys, r0, err := spec.Build()
	if err != nil {
		t.Fatal(err)
	}
	if sys.Network().NumGateways() != 2 || sys.Network().NumConnections() != 3 {
		t.Fatalf("built shape %d/%d", sys.Network().NumGateways(), sys.Network().NumConnections())
	}
	if len(r0) != 3 {
		t.Fatalf("initial rates %v", r0)
	}
	// Default start: 1% of the first gateway's rate.
	if math.Abs(r0[0]-0.01) > 1e-12 || math.Abs(r0[2]-0.02) > 1e-12 {
		t.Errorf("default initial rates %v", r0)
	}
}

func TestEndToEndRun(t *testing.T) {
	spec, err := Load(strings.NewReader(validJSON))
	if err != nil {
		t.Fatal(err)
	}
	sys, r0, err := spec.Build()
	if err != nil {
		t.Fatal(err)
	}
	res, err := sys.Run(r0, core.RunOptions{MaxSteps: 200000})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged {
		t.Fatal("scenario did not converge")
	}
	// Individual feedback on this topology: long and crossA share the
	// bottleneck A (capacity 0.5), crossB picks up the slack at B.
	if math.Abs(res.Rates[0]-0.25) > 1e-4 || math.Abs(res.Rates[1]-0.25) > 1e-4 {
		t.Errorf("bottleneck-A rates %v, want 0.25 each", res.Rates[:2])
	}
	if math.Abs(res.Rates[2]-0.75) > 1e-4 {
		t.Errorf("crossB rate %v, want 0.75", res.Rates[2])
	}
}

func TestLoadRejectsUnknownFields(t *testing.T) {
	if _, err := Load(strings.NewReader(`{"nam": "typo"}`)); err == nil {
		t.Error("unknown field should fail")
	}
	if _, err := Load(strings.NewReader(`not json`)); err == nil {
		t.Error("garbage should fail")
	}
}

func TestBuildValidation(t *testing.T) {
	cases := []struct {
		name string
		json string
	}{
		{"no gateways", `{"connections": [{"path": ["A"]}]}`},
		{"no connections", `{"gateways": [{"name": "A", "mu": 1}]}`},
		{"empty gateway name", `{"gateways": [{"name": "", "mu": 1}], "connections": [{"path": [""]}]}`},
		{"duplicate gateway", `{"gateways": [{"name": "A", "mu": 1}, {"name": "A", "mu": 2}], "connections": [{"path": ["A"]}]}`},
		{"unknown gateway in path", `{"gateways": [{"name": "A", "mu": 1}], "connections": [{"path": ["B"]}]}`},
		{"bad mu", `{"gateways": [{"name": "A", "mu": 0}], "connections": [{"path": ["A"]}]}`},
		{"bad law kind", `{"gateways": [{"name": "A", "mu": 1}], "connections": [{"path": ["A"], "law": {"kind": "quantum"}}]}`},
		{"bad discipline", `{"discipline": "lifo", "gateways": [{"name": "A", "mu": 1}], "connections": [{"path": ["A"], "law": {"eta": 0.1, "bss": 0.5}}]}`},
		{"bad feedback", `{"feedback": "gossip", "gateways": [{"name": "A", "mu": 1}], "connections": [{"path": ["A"], "law": {"eta": 0.1, "bss": 0.5}}]}`},
		{"bad signal", `{"signal": {"kind": "sigmoid"}, "gateways": [{"name": "A", "mu": 1}], "connections": [{"path": ["A"], "law": {"eta": 0.1, "bss": 0.5}}]}`},
		{"power signal no k", `{"signal": {"kind": "power"}, "gateways": [{"name": "A", "mu": 1}], "connections": [{"path": ["A"], "law": {"eta": 0.1, "bss": 0.5}}]}`},
		{"exponential no theta", `{"signal": {"kind": "exponential"}, "gateways": [{"name": "A", "mu": 1}], "connections": [{"path": ["A"], "law": {"eta": 0.1, "bss": 0.5}}]}`},
		{"binary no threshold", `{"signal": {"kind": "binary"}, "gateways": [{"name": "A", "mu": 1}], "connections": [{"path": ["A"], "law": {"eta": 0.1, "bss": 0.5}}]}`},
		{"initial length mismatch", `{"initial": [0.1], "gateways": [{"name": "A", "mu": 1}], "connections": [{"path": ["A"], "law": {"eta": 0.1, "bss": 0.5}}, {"path": ["A"], "law": {"eta": 0.1, "bss": 0.5}}]}`},
	}
	for _, c := range cases {
		spec, err := Load(strings.NewReader(c.json))
		if err != nil {
			continue // parse-level rejection is fine too
		}
		if _, _, err := spec.Build(); err == nil {
			t.Errorf("%s: want build error", c.name)
		}
	}
}

func TestAllLawAndSignalKinds(t *testing.T) {
	js := `{
	  "discipline": "fifo",
	  "feedback": "aggregate",
	  "signal": {"kind": "exponential", "theta": 2},
	  "gateways": [{"name": "G", "mu": 1}],
	  "connections": [
	    {"path": ["G"], "law": {"kind": "additive", "eta": 0.1, "bss": 0.5}},
	    {"path": ["G"], "law": {"kind": "multiplicative", "eta": 0.1, "bss": 0.5}},
	    {"path": ["G"], "law": {"kind": "power", "eta": 0.1, "bss": 0.5, "p": 1}},
	    {"path": ["G"], "law": {"kind": "fairrate", "eta": 0.1, "beta": 0.5}},
	    {"path": ["G"], "law": {"kind": "window", "eta": 0.1, "beta": 0.5}}
	  ]
	}`
	spec, err := Load(strings.NewReader(js))
	if err != nil {
		t.Fatal(err)
	}
	sys, r0, err := spec.Build()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sys.Step(r0); err != nil {
		t.Fatal(err)
	}
}

// TestLoadRejectsTrailingGarbage is the regression test for the bug
// where Load accepted anything after the first JSON value:
// json.Decoder.Decode reads one value and stops, so
// `{"name":"x"}!!!` used to load fine.
func TestLoadRejectsTrailingGarbage(t *testing.T) {
	bad := []string{
		`{"name":"x"}!!!`,
		`{"name":"x"} {"name":"y"}`,
		`{"name":"x"}]`,
		`{"name":"x"}0`,
		`{"name":"x"} trailing`,
	}
	for _, in := range bad {
		if _, err := Load(strings.NewReader(in)); err == nil {
			t.Errorf("Load(%q) accepted trailing garbage", in)
		} else if !strings.Contains(err.Error(), "trailing data") {
			t.Errorf("Load(%q) error %q does not mention trailing data", in, err)
		}
	}
	// Trailing whitespace is not garbage.
	for _, in := range []string{`{"name":"x"}`, "{\"name\":\"x\"}\n\t  \n"} {
		if _, err := Load(strings.NewReader(in)); err != nil {
			t.Errorf("Load(%q): %v", in, err)
		}
	}
}

// TestBuildRejectsBadInitial is the regression test for the bug where
// Build validated only the length of Initial: NaN, ±Inf, and negative
// rates flowed straight into the iterator.
func TestBuildRejectsBadInitial(t *testing.T) {
	mk := func(v0, v1 float64) *Spec {
		return &Spec{
			Gateways:    []GatewaySpec{{Name: "G", Mu: 1}},
			Connections: []ConnectionSpec{{Path: []string{"G"}, Law: LawSpec{Eta: 0.1, BSS: 0.5}}, {Path: []string{"G"}, Law: LawSpec{Eta: 0.1, BSS: 0.5}}},
			Initial:     []float64{v0, v1},
		}
	}
	cases := []struct {
		name    string
		initial [2]float64
		wantIdx string
	}{
		{"NaN", [2]float64{0.1, math.NaN()}, "initial[1]"},
		{"+Inf", [2]float64{math.Inf(1), 0.1}, "initial[0]"},
		{"-Inf", [2]float64{0.1, math.Inf(-1)}, "initial[1]"},
		{"negative", [2]float64{-0.5, 0.1}, "initial[0]"},
	}
	for _, c := range cases {
		_, _, err := mk(c.initial[0], c.initial[1]).Build()
		if err == nil {
			t.Errorf("%s: Build accepted initial %v", c.name, c.initial)
			continue
		}
		if !strings.Contains(err.Error(), c.wantIdx) {
			t.Errorf("%s: error %q does not name %s", c.name, err, c.wantIdx)
		}
	}
	// Zero is a legitimate starting rate.
	if _, _, err := mk(0, 0.1).Build(); err != nil {
		t.Errorf("zero initial rate rejected: %v", err)
	}
}

// TestBuildRejectsNegativeMaxSteps: negative maxSteps used to pass
// Build and rely on downstream defaulting.
func TestBuildRejectsNegativeMaxSteps(t *testing.T) {
	s := &Spec{
		Gateways:    []GatewaySpec{{Name: "G", Mu: 1}},
		Connections: []ConnectionSpec{{Path: []string{"G"}, Law: LawSpec{Eta: 0.1, BSS: 0.5}}},
		MaxSteps:    -1,
	}
	if _, _, err := s.Build(); err == nil || !strings.Contains(err.Error(), "maxSteps") {
		t.Errorf("Build with maxSteps=-1: err=%v, want maxSteps error", err)
	}
}

// TestBuildRejectsNonFiniteParams: non-finite law and signal
// parameters used to pass the comparison-based range checks (NaN
// fails every comparison; +Inf passes "> 0").
func TestBuildRejectsNonFiniteParams(t *testing.T) {
	base := func() *Spec {
		return &Spec{
			Gateways:    []GatewaySpec{{Name: "G", Mu: 1}},
			Connections: []ConnectionSpec{{Path: []string{"G"}, Law: LawSpec{Eta: 0.1, BSS: 0.5}}},
		}
	}
	cases := []struct {
		name string
		mut  func(*Spec)
		want string
	}{
		{"eta NaN", func(s *Spec) { s.Connections[0].Law.Eta = math.NaN() }, "law eta"},
		{"eta +Inf", func(s *Spec) { s.Connections[0].Law.Eta = math.Inf(1) }, "law eta"},
		{"bss NaN", func(s *Spec) { s.Connections[0].Law.BSS = math.NaN() }, "law bss"},
		{"beta -Inf", func(s *Spec) {
			s.Connections[0].Law = LawSpec{Kind: "fairrate", Eta: 0.1, Beta: math.Inf(-1)}
		}, "law beta"},
		{"p NaN", func(s *Spec) {
			s.Connections[0].Law = LawSpec{Kind: "power", Eta: 0.1, BSS: 0.5, P: math.NaN()}
		}, "law p"},
		{"signal k NaN", func(s *Spec) { s.Signal = SignalSpec{Kind: "power", K: math.NaN()} }, "signal k"},
		{"signal k +Inf", func(s *Spec) { s.Signal = SignalSpec{Kind: "power", K: math.Inf(1)} }, "signal k"},
		{"signal theta NaN", func(s *Spec) { s.Signal = SignalSpec{Kind: "exponential", Theta: math.NaN()} }, "signal theta"},
		{"signal threshold NaN", func(s *Spec) { s.Signal = SignalSpec{Kind: "binary", Threshold: math.NaN()} }, "signal threshold"},
	}
	for _, c := range cases {
		s := base()
		c.mut(s)
		_, _, err := s.Build()
		if err == nil {
			t.Errorf("%s: Build accepted a non-finite parameter", c.name)
			continue
		}
		if !strings.Contains(err.Error(), c.want) {
			t.Errorf("%s: error %q does not name %q", c.name, err, c.want)
		}
	}
}

func TestExplicitInitialAndMaxSteps(t *testing.T) {
	js := `{
	  "gateways": [{"name": "G", "mu": 1}],
	  "connections": [{"path": ["G"], "law": {"eta": 0.1, "bss": 0.5}}],
	  "initial": [0.3],
	  "maxSteps": 77
	}`
	spec, err := Load(strings.NewReader(js))
	if err != nil {
		t.Fatal(err)
	}
	_, r0, err := spec.Build()
	if err != nil {
		t.Fatal(err)
	}
	if r0[0] != 0.3 {
		t.Errorf("initial = %v", r0)
	}
	if spec.RunOptions().MaxSteps != 77 {
		t.Errorf("maxSteps = %d", spec.RunOptions().MaxSteps)
	}
}

package scenario

import (
	"bytes"
	"math"
	"strings"
	"testing"
)

// canonOf builds the spec from JSON and canonicalizes it, failing the
// test on either error.
func canonOf(t *testing.T, js string) []byte {
	t.Helper()
	spec, err := Load(strings.NewReader(js))
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	c, err := spec.Canonical()
	if err != nil {
		t.Fatalf("Canonical: %v", err)
	}
	return c
}

func TestCanonicalNormalizesEquivalentSpecs(t *testing.T) {
	base := canonOf(t, `{
	  "name": "n",
	  "discipline": "fairshare",
	  "feedback": "individual",
	  "signal": {"kind": "rational"},
	  "gateways": [{"name": "G", "mu": 1, "latency": 0.1}],
	  "connections": [{"path": ["G"], "law": {"kind": "additive", "eta": 0.1, "bss": 0.5}}]
	}`)
	equivalent := []string{
		// Key order and whitespace.
		`{"connections":[{"law":{"bss":0.5,"eta":0.1,"kind":"additive"},"path":["G"]}],"gateways":[{"latency":0.1,"mu":1,"name":"G"}],"name":"n"}`,
		// Aliases and case.
		`{"name":"n","discipline":"FS","feedback":"INDIVIDUAL","gateways":[{"name":"G","mu":1,"latency":0.1}],"connections":[{"path":["G"],"law":{"kind":"ADDITIVE","eta":0.1,"bss":0.5}}]}`,
		// Defaults spelled out vs omitted.
		`{"name":"n","gateways":[{"name":"G","mu":1,"latency":0.1}],"connections":[{"path":["G"],"law":{"eta":0.1,"bss":0.5}}]}`,
		// Unconsumed law params dropped (additive ignores beta and p).
		`{"name":"n","gateways":[{"name":"G","mu":1,"latency":0.1}],"connections":[{"path":["G"],"law":{"kind":"additive","eta":0.1,"bss":0.5,"beta":9,"p":3}}]}`,
	}
	for i, js := range equivalent {
		if got := canonOf(t, js); !bytes.Equal(got, base) {
			t.Errorf("variant %d canonicalizes differently:\n%s\nvs base\n%s", i, got, base)
		}
	}
}

func TestCanonicalDistinguishesDifferentSpecs(t *testing.T) {
	base := canonOf(t, `{"name":"n","gateways":[{"name":"G","mu":1,"latency":0.1}],"connections":[{"path":["G"],"law":{"eta":0.1,"bss":0.5}}]}`)
	different := []string{
		// Different name (the report carries it).
		`{"name":"m","gateways":[{"name":"G","mu":1,"latency":0.1}],"connections":[{"path":["G"],"law":{"eta":0.1,"bss":0.5}}]}`,
		// Different eta.
		`{"name":"n","gateways":[{"name":"G","mu":1,"latency":0.1}],"connections":[{"path":["G"],"law":{"eta":0.2,"bss":0.5}}]}`,
		// Different discipline.
		`{"name":"n","discipline":"fifo","gateways":[{"name":"G","mu":1,"latency":0.1}],"connections":[{"path":["G"],"law":{"eta":0.1,"bss":0.5}}]}`,
		// Explicit initial vector.
		`{"name":"n","gateways":[{"name":"G","mu":1,"latency":0.1}],"connections":[{"path":["G"],"law":{"eta":0.1,"bss":0.5}}],"initial":[0.3]}`,
		// maxSteps.
		`{"name":"n","gateways":[{"name":"G","mu":1,"latency":0.1}],"connections":[{"path":["G"],"law":{"eta":0.1,"bss":0.5}}],"maxSteps":7}`,
	}
	for i, js := range different {
		if got := canonOf(t, js); bytes.Equal(got, base) {
			t.Errorf("variant %d should canonicalize differently from base", i)
		}
	}
}

func TestCanonicalIsDeterministic(t *testing.T) {
	js := `{"name":"n","signal":{"kind":"power","k":2},"gateways":[{"name":"A","mu":1,"latency":0.1},{"name":"B","mu":2,"latency":0.2}],"connections":[{"path":["A","B"],"law":{"kind":"window","eta":0.02,"beta":0.25}}],"initial":[0.125],"maxSteps":1000}`
	a := canonOf(t, js)
	for i := 0; i < 10; i++ {
		if b := canonOf(t, js); !bytes.Equal(a, b) {
			t.Fatalf("canonicalization is not deterministic:\n%s\nvs\n%s", a, b)
		}
	}
	if !bytes.HasPrefix(a, []byte(CanonicalVersion+"\n")) {
		t.Errorf("canonical bytes do not start with the version tag: %q", a[:32])
	}
}

func TestCanonicalQuotesHostileNames(t *testing.T) {
	a, err := (&Spec{
		Name:        "x\nmu=9",
		Gateways:    []GatewaySpec{{Name: "G", Mu: 1}},
		Connections: []ConnectionSpec{{Path: []string{"G"}, Law: LawSpec{Eta: 0.1, BSS: 0.5}}},
	}).Canonical()
	if err != nil {
		t.Fatal(err)
	}
	b, err := (&Spec{
		Name:        "x",
		Gateways:    []GatewaySpec{{Name: "G", Mu: 9}},
		Connections: []ConnectionSpec{{Path: []string{"G"}, Law: LawSpec{Eta: 0.1, BSS: 0.5}}},
	}).Canonical()
	if err != nil {
		t.Fatal(err)
	}
	if bytes.Equal(a, b) {
		t.Fatal("newline in a name forged a field boundary")
	}
	if !bytes.Contains(a, []byte(`"x\nmu=9"`)) {
		t.Errorf("name not quoted: %s", a)
	}
}

func TestCanonicalRejectsInvalid(t *testing.T) {
	cases := []struct {
		name string
		spec *Spec
	}{
		{"unknown discipline", &Spec{Discipline: "lifo"}},
		{"unknown feedback", &Spec{Feedback: "gossip"}},
		{"unknown signal", &Spec{Signal: SignalSpec{Kind: "sigmoid"}}},
		{"unknown law", &Spec{Connections: []ConnectionSpec{{Law: LawSpec{Kind: "quantum"}}}}},
		{"NaN eta", &Spec{Connections: []ConnectionSpec{{Law: LawSpec{Eta: math.NaN()}}}}},
		{"Inf mu", &Spec{Gateways: []GatewaySpec{{Name: "G", Mu: math.Inf(1)}}}},
		{"NaN initial", &Spec{Initial: []float64{math.NaN()}}},
		{"negative maxSteps", &Spec{MaxSteps: -3}},
	}
	for _, c := range cases {
		if _, err := c.spec.Canonical(); err == nil {
			t.Errorf("%s: Canonical accepted an invalid spec", c.name)
		}
	}
}

package scenario

import (
	"os"
	"path/filepath"
	"testing"

	"github.com/nettheory/feedbackflow/internal/core"
)

// TestShippedScenarioFiles keeps the sample files in scenarios/ valid:
// every one must load, build, and converge.
func TestShippedScenarioFiles(t *testing.T) {
	dir := filepath.Join("..", "..", "scenarios")
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatalf("scenarios directory missing: %v", err)
	}
	if len(entries) == 0 {
		t.Fatal("no sample scenarios shipped")
	}
	for _, e := range entries {
		if e.IsDir() || filepath.Ext(e.Name()) != ".json" {
			continue
		}
		t.Run(e.Name(), func(t *testing.T) {
			f, err := os.Open(filepath.Join(dir, e.Name()))
			if err != nil {
				t.Fatal(err)
			}
			defer f.Close()
			spec, err := Load(f)
			if err != nil {
				t.Fatal(err)
			}
			sys, r0, err := spec.Build()
			if err != nil {
				t.Fatal(err)
			}
			opt := spec.RunOptions()
			if opt.MaxSteps == 0 {
				opt = core.RunOptions{MaxSteps: 400000}
			}
			res, err := sys.Run(r0, opt)
			if err != nil {
				t.Fatal(err)
			}
			if !res.Converged {
				t.Errorf("sample scenario %s did not converge", e.Name())
			}
		})
	}
}

package scenario

import (
	"bytes"
	"fmt"
	"strconv"
	"strings"
)

// CanonicalVersion tags the canonical encoding; it changes whenever
// the encoding below changes, so stale cache entries keyed on an old
// encoding can never be served against a new one.
const CanonicalVersion = "ffc-scenario-canon/v1"

// Canonical returns a deterministic byte encoding of the spec, the
// content-address the run cache (internal/runcache) hashes: two specs
// produce the same bytes exactly when they describe the same run.
//
// The encoding normalizes everything JSON leaves open:
//
//   - key order and whitespace vanish (fields are re-emitted in a
//     fixed order, one line each);
//   - kind aliases and defaults collapse ("" and "fs" both encode as
//     "fairshare"; an absent signal encodes as "rational");
//   - parameters a kind does not consume are dropped (an additive law
//     with a stray "p" is the same law without it);
//   - floats are rendered with strconv's 'x' format, which is exact —
//     two specs canonicalize equal only when their parameters are
//     bit-equal (so -0 and +0 are distinct, conservatively);
//   - strings are quoted with strconv.Quote, so names containing
//     newlines or '=' cannot forge field boundaries.
//
// Gateway and connection order is preserved: it determines the index
// space of the report, so reordering is a semantically different
// scenario. Canonical validates as it encodes (unknown kinds,
// non-finite parameters, negative maxSteps) and errors on specs Build
// would reject for those reasons; it does not repeat Build's
// topological checks.
func (s *Spec) Canonical() ([]byte, error) {
	var b bytes.Buffer
	b.WriteString(CanonicalVersion)
	b.WriteByte('\n')
	fmt.Fprintf(&b, "name=%s\n", strconv.Quote(s.Name))

	disc, err := canonKind("discipline", s.Discipline, map[string]string{
		"": "fairshare", "fs": "fairshare", "fairshare": "fairshare", "fifo": "fifo",
	})
	if err != nil {
		return nil, err
	}
	fmt.Fprintf(&b, "discipline=%s\n", disc)

	feed, err := canonKind("feedback", s.Feedback, map[string]string{
		"": "individual", "individual": "individual", "aggregate": "aggregate",
	})
	if err != nil {
		return nil, err
	}
	fmt.Fprintf(&b, "feedback=%s\n", feed)

	if err := canonSignal(&b, s.Signal); err != nil {
		return nil, err
	}

	for _, g := range s.Gateways {
		if err := finiteParam("gateway "+g.Name+" mu", g.Mu); err != nil {
			return nil, err
		}
		if err := finiteParam("gateway "+g.Name+" latency", g.Latency); err != nil {
			return nil, err
		}
		fmt.Fprintf(&b, "gateway=%s mu=%s latency=%s\n",
			strconv.Quote(g.Name), canonFloat(g.Mu), canonFloat(g.Latency))
	}

	for ci, c := range s.Connections {
		fmt.Fprintf(&b, "conn=[")
		for i, name := range c.Path {
			if i > 0 {
				b.WriteByte(',')
			}
			b.WriteString(strconv.Quote(name))
		}
		b.WriteByte(']')
		// A count of 0 or 1 is one connection and is not emitted, so
		// every pre-count spec keeps its exact canonical bytes (and its
		// cache address). "count=" cannot collide with path content —
		// names inside the brackets are quoted.
		n, err := c.count()
		if err != nil {
			return nil, fmt.Errorf("scenario: connection %d: %w", ci, err)
		}
		if n > 1 {
			fmt.Fprintf(&b, " count=%d", n)
		}
		kind, err := canonKind("law", c.Law.Kind, map[string]string{
			"": "additive", "additive": "additive", "multiplicative": "multiplicative",
			"power": "power", "fairrate": "fairrate", "window": "window",
		})
		if err != nil {
			return nil, fmt.Errorf("scenario: connection %d: %w", ci, err)
		}
		fmt.Fprintf(&b, " law=%s", kind)
		for _, p := range lawParams(c.Law) {
			if err := finiteParam(fmt.Sprintf("connection %d law %s", ci, p.name), p.v); err != nil {
				return nil, err
			}
			fmt.Fprintf(&b, " %s=%s", p.name, canonFloat(p.v))
		}
		b.WriteByte('\n')
	}

	if len(s.Initial) > 0 {
		b.WriteString("initial=")
		for i, v := range s.Initial {
			if err := finiteParam(fmt.Sprintf("initial[%d]", i), v); err != nil {
				return nil, err
			}
			if i > 0 {
				b.WriteByte(',')
			}
			b.WriteString(canonFloat(v))
		}
		b.WriteByte('\n')
	}
	if s.MaxSteps < 0 {
		return nil, fmt.Errorf("scenario: maxSteps %d is negative (0 means the default)", s.MaxSteps)
	}
	if s.MaxSteps != 0 {
		fmt.Fprintf(&b, "maxsteps=%d\n", s.MaxSteps)
	}
	return b.Bytes(), nil
}

// canonSignal emits the signal line: the normalized kind plus only the
// parameters that kind consumes.
func canonSignal(b *bytes.Buffer, sp SignalSpec) error {
	kind, err := canonKind("signal", sp.Kind, map[string]string{
		"": "rational", "rational": "rational", "power": "power",
		"exponential": "exponential", "binary": "binary",
	})
	if err != nil {
		return err
	}
	switch kind {
	case "rational":
		b.WriteString("signal=rational\n")
	case "power":
		if err := finiteParam("signal k", sp.K); err != nil {
			return err
		}
		fmt.Fprintf(b, "signal=power k=%s\n", canonFloat(sp.K))
	case "exponential":
		if err := finiteParam("signal theta", sp.Theta); err != nil {
			return err
		}
		fmt.Fprintf(b, "signal=exponential theta=%s\n", canonFloat(sp.Theta))
	case "binary":
		if err := finiteParam("signal threshold", sp.Threshold); err != nil {
			return err
		}
		fmt.Fprintf(b, "signal=binary threshold=%s\n", canonFloat(sp.Threshold))
	}
	return nil
}

// canonKind lowercases a kind string and resolves it through the alias
// table, erroring on kinds the builder would reject.
func canonKind(what, kind string, aliases map[string]string) (string, error) {
	if canon, ok := aliases[strings.ToLower(kind)]; ok {
		return canon, nil
	}
	return "", fmt.Errorf("scenario: unknown %s %q", what, kind)
}

// canonFloat renders v exactly: 'x' is hexadecimal floating point with
// the shortest exact mantissa, so distinct float64 bit patterns render
// distinctly and equal values identically on every platform.
func canonFloat(v float64) string {
	return strconv.FormatFloat(v, 'x', -1, 64)
}

// Package scenario loads declarative JSON descriptions of feedback
// flow control experiments — topology, service discipline, signalling,
// and per-connection rate adjustment laws — and builds runnable
// systems from them. It exists so that the workbench CLI (cmd/ffc) and
// downstream users can define reproducible scenarios as data rather
// than code.
//
// A minimal scenario:
//
//	{
//	  "name": "two-bottleneck",
//	  "discipline": "fairshare",
//	  "feedback": "individual",
//	  "gateways": [
//	    {"name": "A", "mu": 1.0, "latency": 0.1},
//	    {"name": "B", "mu": 2.0, "latency": 0.1}
//	  ],
//	  "connections": [
//	    {"path": ["A", "B"], "law": {"kind": "additive", "eta": 0.05, "bss": 0.5}},
//	    {"path": ["A"],      "law": {"kind": "additive", "eta": 0.05, "bss": 0.5}}
//	  ]
//	}
package scenario

import (
	"encoding/json"
	"fmt"
	"io"
	"strings"

	"github.com/nettheory/feedbackflow/internal/control"
	"github.com/nettheory/feedbackflow/internal/core"
	"github.com/nettheory/feedbackflow/internal/finite"
	"github.com/nettheory/feedbackflow/internal/queueing"
	"github.com/nettheory/feedbackflow/internal/signal"
	"github.com/nettheory/feedbackflow/internal/topology"
)

// Spec is a declarative scenario.
type Spec struct {
	// Name labels the scenario in output.
	Name string `json:"name"`
	// Discipline selects the gateway service discipline: "fifo" or
	// "fairshare" (default "fairshare").
	Discipline string `json:"discipline"`
	// Feedback selects the congestion signalling style: "aggregate"
	// or "individual" (default "individual").
	Feedback string `json:"feedback"`
	// Signal selects the signal function B (default rational).
	Signal SignalSpec `json:"signal"`
	// Gateways lists the logical gateways.
	Gateways []GatewaySpec `json:"gateways"`
	// Connections lists the connections with their routes and laws.
	Connections []ConnectionSpec `json:"connections"`
	// Initial optionally fixes the initial rate vector; when empty,
	// every connection starts at 1% of its first gateway's rate.
	Initial []float64 `json:"initial"`
	// MaxSteps bounds the iteration (default core's 20000).
	MaxSteps int `json:"maxSteps"`
}

// GatewaySpec describes one gateway.
type GatewaySpec struct {
	Name    string  `json:"name"`
	Mu      float64 `json:"mu"`
	Latency float64 `json:"latency"`
}

// ConnectionSpec describes one connection, or — with Count — a
// homogeneous population of them.
type ConnectionSpec struct {
	// Path is the ordered list of gateway names the connection
	// traverses.
	Path []string `json:"path"`
	// Law is the connection's rate adjustment law.
	Law LawSpec `json:"law"`
	// Count replicates the entry: the scenario behaves exactly as if
	// it appeared Count times in a row (0 and 1 both mean one
	// connection). This is how large homogeneous populations are
	// declared without one JSON entry per source; the discrete backend
	// expands them, the fluid backend (internal/fluid) solves each
	// class in O(1) regardless of Count.
	Count int64 `json:"count,omitempty"`
}

// MaxCount bounds one entry's Count, and MaxDiscreteConnections bounds
// the expanded population Build will materialize — past that the
// per-connection representation itself is the problem and the caller
// is pointed at the fluid backend. Counts up to MaxCount still stay
// exactly representable as float64 class weights (< 2^53).
const (
	MaxCount               = int64(1) << 40
	MaxDiscreteConnections = int64(1) << 24
)

// count resolves the entry's replication factor (0 and 1 both mean
// one) and rejects the values no backend can honor.
func (c ConnectionSpec) count() (int64, error) {
	if c.Count < 0 {
		return 0, fmt.Errorf("count %d is negative", c.Count)
	}
	if c.Count > MaxCount {
		return 0, fmt.Errorf("count %d exceeds the maximum %d", c.Count, MaxCount)
	}
	if c.Count == 0 {
		return 1, nil
	}
	return c.Count, nil
}

// LawSpec describes a rate adjustment law.
type LawSpec struct {
	// Kind: "additive", "multiplicative", "power", "fairrate",
	// "window".
	Kind string  `json:"kind"`
	Eta  float64 `json:"eta"`
	Beta float64 `json:"beta"`
	BSS  float64 `json:"bss"`
	P    float64 `json:"p"`
}

// SignalSpec describes the signal function B.
type SignalSpec struct {
	// Kind: "rational" (default), "power", "exponential", "binary".
	Kind      string  `json:"kind"`
	K         float64 `json:"k"`         // power exponent
	Theta     float64 `json:"theta"`     // exponential scale
	Threshold float64 `json:"threshold"` // binary threshold
}

// Load parses a scenario from JSON. Unknown fields are rejected so
// typos fail loudly, and the document must be exactly one JSON value:
// anything after it besides whitespace — a second document, stray
// bytes from a truncated upload — is an error rather than silently
// ignored (json.Decoder.Decode alone stops after the first value).
//
//ffc:taint sanitizer
func Load(r io.Reader) (*Spec, error) {
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	var s Spec
	if err := dec.Decode(&s); err != nil {
		return nil, fmt.Errorf("scenario: %w", err)
	}
	if tok, err := dec.Token(); err != io.EOF {
		if err == nil {
			return nil, fmt.Errorf("scenario: trailing data after JSON document (unexpected %v)", tok)
		}
		return nil, fmt.Errorf("scenario: trailing data after JSON document: %v", err)
	}
	return &s, nil
}

// Build validates the spec and assembles the system plus the initial
// rate vector.
//
//ffc:taint sanitizer
func (s *Spec) Build() (*core.System, []float64, error) {
	if len(s.Gateways) == 0 {
		return nil, nil, fmt.Errorf("scenario: no gateways")
	}
	if len(s.Connections) == 0 {
		return nil, nil, fmt.Errorf("scenario: no connections")
	}
	if s.MaxSteps < 0 {
		return nil, nil, fmt.Errorf("scenario: maxSteps %d is negative (0 means the default)", s.MaxSteps)
	}
	var bld topology.Builder
	byName := make(map[string]int, len(s.Gateways))
	for _, g := range s.Gateways {
		if g.Name == "" {
			return nil, nil, fmt.Errorf("scenario: gateway with empty name")
		}
		if _, dup := byName[g.Name]; dup {
			return nil, nil, fmt.Errorf("scenario: duplicate gateway name %q", g.Name)
		}
		byName[g.Name] = bld.AddGateway(g.Name, g.Mu, g.Latency)
	}
	total, err := s.TotalConnections()
	if err != nil {
		return nil, nil, err
	}
	if total > MaxDiscreteConnections {
		return nil, nil, fmt.Errorf("scenario: %d connections exceed the discrete backend's limit %d; use the fluid backend", total, MaxDiscreteConnections)
	}
	laws := make([]control.Law, 0, total)
	for ci, c := range s.Connections {
		path := make([]int, 0, len(c.Path))
		for _, name := range c.Path {
			idx, ok := byName[name]
			if !ok {
				return nil, nil, fmt.Errorf("scenario: connection %d references unknown gateway %q", ci, name)
			}
			path = append(path, idx)
		}
		law, err := buildLaw(c.Law)
		if err != nil {
			return nil, nil, fmt.Errorf("scenario: connection %d: %w", ci, err)
		}
		n, err := c.count()
		if err != nil {
			return nil, nil, fmt.Errorf("scenario: connection %d: %w", ci, err)
		}
		for k := int64(0); k < n; k++ {
			bld.AddConnection(path...)
			laws = append(laws, law)
		}
	}
	net, err := bld.Build()
	if err != nil {
		return nil, nil, fmt.Errorf("scenario: %w", err)
	}

	disc, err := buildDiscipline(s.Discipline)
	if err != nil {
		return nil, nil, err
	}
	style, err := buildFeedback(s.Feedback)
	if err != nil {
		return nil, nil, err
	}
	sigFn, err := buildSignal(s.Signal)
	if err != nil {
		return nil, nil, err
	}
	sys, err := core.NewSystem(net, disc, style, sigFn, laws)
	if err != nil {
		return nil, nil, fmt.Errorf("scenario: %w", err)
	}

	r0 := s.Initial
	if len(r0) == 0 {
		r0 = make([]float64, net.NumConnections())
		for i := range r0 {
			first := net.Route(i)[0]
			r0[i] = 0.01 * net.Gateway(first).Mu
		}
	} else if len(r0) != net.NumConnections() {
		return nil, nil, fmt.Errorf("scenario: %d initial rates for %d connections", len(r0), net.NumConnections())
	} else {
		// The initial vector is the only numeric input the length check
		// above does not constrain: NaN poisons every downstream sum,
		// and the model has no meaning for negative or infinite rates.
		for i, v := range r0 {
			if finite.IsBad(v) || v < 0 {
				return nil, nil, fmt.Errorf("scenario: initial[%d] = %v: initial rates must be finite and non-negative", i, v)
			}
		}
	}
	return sys, r0, nil
}

// RunOptions returns the core options implied by the spec.
func (s *Spec) RunOptions() core.RunOptions {
	return core.RunOptions{MaxSteps: s.MaxSteps}
}

func buildDiscipline(kind string) (queueing.Discipline, error) {
	switch strings.ToLower(kind) {
	case "", "fairshare", "fs":
		return queueing.FairShare{}, nil
	case "fifo":
		return queueing.FIFO{}, nil
	}
	return nil, fmt.Errorf("scenario: unknown discipline %q", kind)
}

func buildFeedback(kind string) (signal.Style, error) {
	switch strings.ToLower(kind) {
	case "", "individual":
		return signal.Individual, nil
	case "aggregate":
		return signal.Aggregate, nil
	}
	return 0, fmt.Errorf("scenario: unknown feedback style %q", kind)
}

func buildSignal(sp SignalSpec) (signal.Func, error) {
	switch strings.ToLower(sp.Kind) {
	case "", "rational":
		return signal.Rational{}, nil
	case "power":
		// The positivity comparisons alone would wave NaN (and, for k,
		// +Inf) through: !(NaN <= 0) and Inf > 0 both hold.
		if err := finiteParam("signal k", sp.K); err != nil {
			return nil, err
		}
		if sp.K <= 0 {
			return nil, fmt.Errorf("scenario: power signal needs k > 0")
		}
		return signal.Power{K: sp.K}, nil
	case "exponential":
		if err := finiteParam("signal theta", sp.Theta); err != nil {
			return nil, err
		}
		if sp.Theta <= 0 {
			return nil, fmt.Errorf("scenario: exponential signal needs theta > 0")
		}
		return signal.Exponential{Theta: sp.Theta}, nil
	case "binary":
		if err := finiteParam("signal threshold", sp.Threshold); err != nil {
			return nil, err
		}
		if sp.Threshold <= 0 {
			return nil, fmt.Errorf("scenario: binary signal needs threshold > 0")
		}
		return signal.Binary{Threshold: sp.Threshold}, nil
	}
	return nil, fmt.Errorf("scenario: unknown signal kind %q", sp.Kind)
}

// lawParams names the parameters each law kind actually consumes; the
// canonicalizer (see Canonical) drops the rest, so validation and
// canonicalization agree on what is significant.
func lawParams(sp LawSpec) []struct {
	name string
	v    float64
} {
	type p = struct {
		name string
		v    float64
	}
	switch strings.ToLower(sp.Kind) {
	case "", "additive", "multiplicative":
		return []p{{"eta", sp.Eta}, {"bss", sp.BSS}}
	case "power":
		return []p{{"eta", sp.Eta}, {"bss", sp.BSS}, {"p", sp.P}}
	case "fairrate", "window":
		return []p{{"eta", sp.Eta}, {"beta", sp.Beta}}
	}
	return nil
}

func buildLaw(sp LawSpec) (control.Law, error) {
	for _, p := range lawParams(sp) {
		if err := finiteParam("law "+p.name, p.v); err != nil {
			return nil, err
		}
	}
	switch strings.ToLower(sp.Kind) {
	case "", "additive":
		return control.AdditiveTSI{Eta: sp.Eta, BSS: sp.BSS}, nil
	case "multiplicative":
		return control.MultiplicativeTSI{Eta: sp.Eta, BSS: sp.BSS}, nil
	case "power":
		return control.PowerTSI{Eta: sp.Eta, BSS: sp.BSS, P: sp.P}, nil
	case "fairrate":
		return control.FairRateLIMD{Eta: sp.Eta, Beta: sp.Beta}, nil
	case "window":
		return control.WindowLIMD{Eta: sp.Eta, Beta: sp.Beta}, nil
	}
	return nil, fmt.Errorf("unknown law kind %q", sp.Kind)
}

// finiteParam rejects NaN and ±Inf parameter values with a message
// naming the parameter; the comparison-based range checks downstream
// would silently accept them. It delegates to internal/finite so this
// package, analytic, and fluid all reject exactly the same value set.
func finiteParam(name string, v float64) error {
	return finite.Check("scenario", name, v)
}

package scenario

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"testing"

	"github.com/nettheory/feedbackflow/internal/obs"
)

// TestShippedScenarioRoundTrip pushes every checked-in scenarios/*.json
// through the full pipeline — Load → Build → Run → Report → JSON →
// decode — under both gateway disciplines. The native discipline must
// converge (samples_test.go also guards that); the overridden one only
// has to run and report cleanly, since convergence is a property of
// the design point, not of the pipeline.
func TestShippedScenarioRoundTrip(t *testing.T) {
	dir := filepath.Join("..", "..", "scenarios")
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatalf("scenarios directory missing: %v", err)
	}
	files := 0
	for _, e := range entries {
		if e.IsDir() || filepath.Ext(e.Name()) != ".json" {
			continue
		}
		files++
		for _, disc := range []string{"fairshare", "fifo"} {
			disc := disc
			t.Run(e.Name()+"/"+disc, func(t *testing.T) {
				data, err := os.ReadFile(filepath.Join(dir, e.Name()))
				if err != nil {
					t.Fatal(err)
				}
				spec, err := Load(bytes.NewReader(data))
				if err != nil {
					t.Fatalf("Load: %v", err)
				}
				native := spec.Discipline == "" || spec.Discipline == disc
				spec.Discipline = disc
				sys, r0, err := spec.Build()
				if err != nil {
					t.Fatalf("Build: %v", err)
				}
				if _, err := spec.Canonical(); err != nil {
					t.Fatalf("Canonical: %v", err)
				}
				opt := spec.RunOptions()
				if opt.MaxSteps == 0 {
					opt.MaxSteps = 400000
				}
				res, err := sys.Run(r0, opt)
				if err != nil {
					t.Fatalf("Run: %v", err)
				}
				if native && !res.Converged {
					t.Errorf("native discipline did not converge in %d steps", res.Steps)
				}
				rep, err := sys.Report(res, spec.Name)
				if err != nil {
					t.Fatalf("Report: %v", err)
				}
				data, err = json.Marshal(rep)
				if err != nil {
					t.Fatalf("marshal report: %v", err)
				}
				var back obs.RunReport
				if err := json.Unmarshal(data, &back); err != nil {
					t.Fatalf("unmarshal report: %v", err)
				}
				if back.Schema != obs.RunReportSchema || back.Scenario != spec.Name ||
					back.Steps != rep.Steps || back.Converged != rep.Converged {
					t.Errorf("report did not round-trip: %+v vs %+v", back, rep)
				}
				if len(back.Rates) != sys.Network().NumConnections() {
					t.Errorf("report carries %d rates for %d connections", len(back.Rates), sys.Network().NumConnections())
				}
			})
		}
	}
	if files == 0 {
		t.Fatal("no sample scenarios shipped")
	}
}

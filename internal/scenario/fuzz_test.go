package scenario

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"
)

// FuzzLoad drives the loader — the repository's only untrusted input
// surface — with arbitrary bytes: malformed input must produce an
// error, never a panic, and input that loads must survive Build and
// canonicalize deterministically. Seeded with the shipped scenario
// files plus the malformed shapes the regression tests guard.
func FuzzLoad(f *testing.F) {
	dir := filepath.Join("..", "..", "scenarios")
	entries, err := os.ReadDir(dir)
	if err != nil {
		f.Fatalf("scenarios directory missing: %v", err)
	}
	for _, e := range entries {
		if e.IsDir() || filepath.Ext(e.Name()) != ".json" {
			continue
		}
		data, err := os.ReadFile(filepath.Join(dir, e.Name()))
		if err != nil {
			f.Fatal(err)
		}
		f.Add(data)
	}
	f.Add([]byte(`{"name":"x"}!!!`))
	f.Add([]byte(`{"name":"x"} {"name":"y"}`))
	f.Add([]byte(`{"maxSteps": -1, "gateways": [{"name":"G","mu":1}], "connections": [{"path":["G"]}]}`))
	f.Add([]byte(`{"initial": [-1], "gateways": [{"name":"G","mu":1}], "connections": [{"path":["G"]}]}`))
	f.Add([]byte(`{"gateways": [{"name":"G","mu":1e999}], "connections": [{"path":["G"]}]}`))
	f.Add([]byte(`not json`))
	f.Add([]byte(``))

	f.Fuzz(func(t *testing.T, data []byte) {
		spec, err := Load(bytes.NewReader(data))
		if err != nil {
			return // rejection is always fine; panicking is not
		}
		sys, r0, err := spec.Build()
		if err != nil {
			return
		}
		if len(r0) != sys.Network().NumConnections() {
			t.Fatalf("Build returned %d initial rates for %d connections", len(r0), sys.Network().NumConnections())
		}
		// A spec that builds must canonicalize, and deterministically.
		c1, err := spec.Canonical()
		if err != nil {
			t.Fatalf("spec builds but does not canonicalize: %v", err)
		}
		c2, err := spec.Canonical()
		if err != nil || !bytes.Equal(c1, c2) {
			t.Fatalf("canonicalization is not deterministic")
		}
	})
}

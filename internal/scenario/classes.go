package scenario

import (
	"fmt"
	"strconv"
	"strings"

	"github.com/nettheory/feedbackflow/internal/control"
	"github.com/nettheory/feedbackflow/internal/finite"
	"github.com/nettheory/feedbackflow/internal/queueing"
	"github.com/nettheory/feedbackflow/internal/signal"
)

// TotalConnections returns the expanded connection population —
// Σ max(1, Count) over the entries — without building anything.
// Backend selection (internal/serve, cmd/ffc) reads it to decide
// discrete vs fluid before committing to either representation.
func (s *Spec) TotalConnections() (int64, error) {
	var total int64
	for ci, c := range s.Connections {
		n, err := c.count()
		if err != nil {
			return 0, fmt.Errorf("scenario: connection %d: %w", ci, err)
		}
		total += n
		if total > MaxCount {
			return 0, fmt.Errorf("scenario: total connection count exceeds the maximum %d", MaxCount)
		}
	}
	return total, nil
}

// ClassSpec is one collapsed equivalence class of a spec's expanded
// connection population: every member shares a canonically-equal law
// (alias kinds resolved, unconsumed parameters dropped), the same
// gateway path, and the same initial rate, so the fluid backend
// integrates a single ODE for the whole class.
type ClassSpec struct {
	// Path is the ordered gateway-name route, as written in the spec.
	Path []string
	// Law is a representative member's law spec (canonically equal
	// across the class).
	Law LawSpec
	// Count is the number of members — the class weight.
	Count int64
	// Initial is the per-member starting rate with Build's default
	// already applied (1% of the first gateway's service rate when the
	// spec does not fix one).
	Initial float64
}

// FluidClasses collapses the spec's expanded population into classes,
// in first-appearance order, validating exactly the inputs the
// grouping touches (counts, gateway references, law kinds and
// parameters, initial rates). It never materializes the population:
// a single count=10⁷ entry costs one class. Members group together
// when their canonical law rendering, path, and initial-rate bits
// (negative zero collapsed — the kernels cannot tell -0 from +0)
// all agree.
func (s *Spec) FluidClasses() ([]ClassSpec, error) {
	if len(s.Gateways) == 0 {
		return nil, fmt.Errorf("scenario: no gateways")
	}
	if len(s.Connections) == 0 {
		return nil, fmt.Errorf("scenario: no connections")
	}
	byName := make(map[string]int, len(s.Gateways))
	for _, g := range s.Gateways {
		if g.Name == "" {
			return nil, fmt.Errorf("scenario: gateway with empty name")
		}
		if _, dup := byName[g.Name]; dup {
			return nil, fmt.Errorf("scenario: duplicate gateway name %q", g.Name)
		}
		byName[g.Name] = len(byName)
	}
	total, err := s.TotalConnections()
	if err != nil {
		return nil, err
	}
	if n := int64(len(s.Initial)); n > 0 && n != total {
		return nil, fmt.Errorf("scenario: %d initial rates for %d connections", n, total)
	}

	var (
		classes []ClassSpec
		index   = make(map[string]int)
		member  int64 // expanded index, addresses s.Initial
	)
	for ci, c := range s.Connections {
		n, err := c.count()
		if err != nil {
			return nil, fmt.Errorf("scenario: connection %d: %w", ci, err)
		}
		if len(c.Path) == 0 {
			return nil, fmt.Errorf("scenario: connection %d has an empty path", ci)
		}
		var key strings.Builder
		for _, name := range c.Path {
			if _, ok := byName[name]; !ok {
				return nil, fmt.Errorf("scenario: connection %d references unknown gateway %q", ci, name)
			}
			key.WriteString(strconv.Quote(name))
			key.WriteByte(',')
		}
		lawKey, err := canonLawKey(c.Law)
		if err != nil {
			return nil, fmt.Errorf("scenario: connection %d: %w", ci, err)
		}
		key.WriteByte('|')
		key.WriteString(lawKey)
		prefix := key.String()

		// Default initial: 1% of the first gateway's service rate,
		// mirroring Build. With an explicit Initial vector the members
		// of one entry may start at different rates, so each member is
		// classed individually; without one, the whole entry shares the
		// default and collapses in a single step.
		defInit := 0.01 * s.Gateways[byName[c.Path[0]]].Mu
		addMembers := func(init float64, count int64) error {
			if finite.IsBad(init) || init < 0 {
				return fmt.Errorf("scenario: initial[%d] = %v: initial rates must be finite and non-negative", member, init)
			}
			init = finite.Norm(init)
			k := prefix + "|" + canonFloat(init)
			if at, ok := index[k]; ok {
				classes[at].Count += count
			} else {
				index[k] = len(classes)
				classes = append(classes, ClassSpec{Path: c.Path, Law: c.Law, Count: count, Initial: init})
			}
			return nil
		}
		if len(s.Initial) == 0 {
			if err := addMembers(defInit, n); err != nil {
				return nil, err
			}
			member += n
		} else {
			for k := int64(0); k < n; k++ {
				if err := addMembers(s.Initial[member], 1); err != nil {
					return nil, err
				}
				member++
			}
		}
	}
	return classes, nil
}

// canonLawKey renders the law the way Canonical does — normalized
// kind, only the consumed parameters, exact float bits — so two law
// specs land in one class exactly when the canonical encoding calls
// them equal.
func canonLawKey(sp LawSpec) (string, error) {
	kind, err := canonKind("law", sp.Kind, map[string]string{
		"": "additive", "additive": "additive", "multiplicative": "multiplicative",
		"power": "power", "fairrate": "fairrate", "window": "window",
	})
	if err != nil {
		return "", err
	}
	var b strings.Builder
	b.WriteString(kind)
	for _, p := range lawParams(sp) {
		if err := finiteParam("law "+p.name, p.v); err != nil {
			return "", err
		}
		b.WriteByte(' ')
		b.WriteString(p.name)
		b.WriteByte('=')
		b.WriteString(canonFloat(p.v))
	}
	return b.String(), nil
}

// The Build* wrappers export the spec-fragment compilers so the fluid
// backend (internal/fluid) can assemble a system from FluidClasses
// without routing through Build's per-connection expansion.

// BuildLaw compiles one validated law spec into its control.Law.
func BuildLaw(sp LawSpec) (control.Law, error) { return buildLaw(sp) }

// BuildDiscipline resolves a discipline kind ("", "fairshare", "fs",
// "fifo").
func BuildDiscipline(kind string) (queueing.Discipline, error) { return buildDiscipline(kind) }

// BuildFeedback resolves a feedback style kind ("", "individual",
// "aggregate").
func BuildFeedback(kind string) (signal.Style, error) { return buildFeedback(kind) }

// BuildSignal compiles one validated signal spec into its
// signal.Func.
func BuildSignal(sp SignalSpec) (signal.Func, error) { return buildSignal(sp) }

package analytic

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"github.com/nettheory/feedbackflow/internal/control"
	"github.com/nettheory/feedbackflow/internal/core"
	"github.com/nettheory/feedbackflow/internal/queueing"
	"github.com/nettheory/feedbackflow/internal/signal"
	"github.com/nettheory/feedbackflow/internal/topology"
)

func TestSteadyStateValidation(t *testing.T) {
	if _, err := SteadyState(queueing.FairShare{}, nil, signal.Rational{}, 1); err == nil {
		t.Error("want error for no connections")
	}
	if _, err := SteadyState(queueing.FairShare{}, []float64{0.5}, signal.Rational{}, 0); err == nil {
		t.Error("want error for bad mu")
	}
	for _, bad := range []float64{0, 1, -0.5, math.NaN()} {
		if _, err := SteadyState(queueing.FairShare{}, []float64{bad}, signal.Rational{}, 1); err == nil {
			t.Errorf("want error for bss=%v", bad)
		}
	}
}

func TestSteadyStateHomogeneous(t *testing.T) {
	// Equal targets: everyone gets bss·μ/N under either discipline
	// (with the rational signal making b = load at the bottleneck).
	for _, disc := range []queueing.Discipline{queueing.FIFO{}, queueing.FairShare{}} {
		r, err := SteadyState(disc, []float64{0.6, 0.6, 0.6}, signal.Rational{}, 2)
		if err != nil {
			t.Fatalf("%s: %v", disc.Name(), err)
		}
		for i, ri := range r {
			if math.Abs(ri-0.4) > 1e-9 {
				t.Errorf("%s: r[%d] = %v, want 0.4", disc.Name(), i, ri)
			}
		}
	}
}

func TestSteadyStateKnownHeterogeneous(t *testing.T) {
	// The E9 instance: bss = (0.7, 0.4), μ = 1. Analytic solutions:
	// FIFO (0.6, 0.1), Fair Share (0.5, 0.2).
	r, err := SteadyState(queueing.FIFO{}, []float64{0.7, 0.4}, signal.Rational{}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(r[0]-0.6) > 1e-6 || math.Abs(r[1]-0.1) > 1e-6 {
		t.Errorf("FIFO solution %v, want (0.6, 0.1)", r)
	}
	r, err = SteadyState(queueing.FairShare{}, []float64{0.7, 0.4}, signal.Rational{}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(r[0]-0.5) > 1e-9 || math.Abs(r[1]-0.2) > 1e-9 {
		t.Errorf("FairShare solution %v, want (0.5, 0.2)", r)
	}
}

func TestSteadyStatePreservesInputOrder(t *testing.T) {
	// Unsorted targets come back in input order.
	r, err := SteadyState(queueing.FairShare{}, []float64{0.4, 0.7}, signal.Rational{}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if !(r[0] < r[1]) {
		t.Errorf("lower target should get lower rate: %v", r)
	}
}

func TestSteadyStateUnsupportedDiscipline(t *testing.T) {
	if _, err := SteadyState(fakeDisc{}, []float64{0.5}, signal.Rational{}, 1); err == nil {
		t.Error("want error for unsupported discipline")
	}
}

type fakeDisc struct{}

func (fakeDisc) Name() string { return "fake" }
func (fakeDisc) Queues([]float64, float64) ([]float64, error) {
	return nil, nil
}
func (fakeDisc) SojournTimes([]float64, float64) ([]float64, error) {
	return nil, nil
}

// Property: the closed form agrees with the iterated dynamics and is
// a zero-residual steady state, for random heterogeneous targets,
// both disciplines, and a non-rational signal function.
func TestPropAnalyticMatchesIteration(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(3)
		mu := 0.5 + rng.Float64()*2
		bss := make([]float64, n)
		for i := range bss {
			bss[i] = 0.15 + 0.7*rng.Float64()
		}
		var b signal.Func = signal.Rational{}
		if seed%2 == 0 {
			b = signal.Exponential{Theta: 2}
		}
		disc := queueing.Discipline(queueing.FIFO{})
		if seed%3 == 0 {
			disc = queueing.FairShare{}
		}
		want, err := SteadyState(disc, bss, b, mu)
		if err != nil {
			// Infeasible draws are allowed; just skip them.
			return true
		}
		net, err := topology.SingleGateway(n, mu, 0.1)
		if err != nil {
			return false
		}
		laws := make([]control.Law, n)
		for i := range laws {
			laws[i] = control.AdditiveTSI{Eta: 0.03 * mu, BSS: bss[i]}
		}
		sys, err := core.NewSystem(net, disc, signal.Individual, b, laws)
		if err != nil {
			return false
		}
		// Closed form must be an exact rest point.
		resid, err := sys.Residual(want)
		if err != nil || resid > 1e-7*mu {
			return false
		}
		// And the iteration must find it.
		r0 := make([]float64, n)
		for i := range r0 {
			r0[i] = (0.02 + 0.2*rng.Float64()) * mu / float64(n)
		}
		out, err := sys.Run(r0, core.RunOptions{MaxSteps: 400000, Tol: 1e-12})
		if err != nil || !out.Converged {
			return false
		}
		for i := range want {
			if math.Abs(out.Rates[i]-want[i]) > 1e-4*(1+want[i]) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

// Property: the analytic solution's queues really do hit the
// congestion targets C*_i = B⁻¹(b_SS,i).
func TestPropAnalyticHitsTargets(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(4)
		bss := make([]float64, n)
		for i := range bss {
			bss[i] = 0.2 + 0.6*rng.Float64()
		}
		for _, disc := range []queueing.Discipline{queueing.FIFO{}, queueing.FairShare{}} {
			r, err := SteadyState(disc, bss, signal.Rational{}, 1)
			if err != nil {
				continue
			}
			q, err := disc.Queues(r, 1)
			if err != nil {
				return false
			}
			for i := range r {
				ci := signal.IndividualCongestion(q, i)
				got := (signal.Rational{}).Eval(ci)
				if math.Abs(got-bss[i]) > 1e-6 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

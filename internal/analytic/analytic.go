// Package analytic computes closed-form steady states of the paper's
// model in the cases where the fixed-point equations can be solved
// directly, providing an independent cross-check on the iterative
// dynamics in internal/core.
//
// The solvable case is a single gateway with individual feedback and
// per-connection TSI laws (target signals b_SS,i). At steady state,
// connection i's individual congestion must equal C*_i = B⁻¹(b_SS,i);
// with queues sorted ascending this reads
//
//	C*_i = Σ_{k<i} Q_k + (N−i)·Q_i      (0-based sorted index i)
//
// and the queue order matches the target-signal order (monotonicity).
// For Fair Share the recursion g(L_i) = Σ_{k<i} Q_k + (N−i)·Q_i has
// exactly the same left-hand side, so L_i = g⁻¹(C*_i) and the rates
// follow by forward substitution. For FIFO the queues are coupled
// through the total load S, leaving a one-dimensional root-finding
// problem in S that is solved by bisection.
package analytic

import (
	"fmt"
	"sort"

	"github.com/nettheory/feedbackflow/internal/finite"
	"github.com/nettheory/feedbackflow/internal/queueing"
	"github.com/nettheory/feedbackflow/internal/signal"
)

// SteadyState solves the single-gateway individual-feedback fixed
// point for the given discipline, per-connection target signals bss,
// signal function b, and server rate mu. It returns the steady-state
// rate vector in the input order.
//
// All target signals must lie in (0, 1), and the implied congestion
// targets must be jointly feasible (the computation reports an error
// otherwise rather than returning negative rates).
func SteadyState(disc queueing.Discipline, bss []float64, b signal.Func, mu float64) ([]float64, error) {
	n := len(bss)
	if n == 0 {
		return nil, fmt.Errorf("analytic: no connections")
	}
	if finite.IsBad(mu) || mu <= 0 {
		return nil, fmt.Errorf("analytic: invalid service rate %v", mu)
	}
	// Congestion targets, sorted ascending (queue order follows
	// signal order by the monotonicity assumptions).
	type tgt struct {
		orig int
		c    float64
	}
	tgts := make([]tgt, n)
	for i, s := range bss {
		// finite.IsBad first: the range comparisons alone would admit
		// NaN (!(NaN <= 0)), and while ±Inf happens to fail them here,
		// every entry point rejecting non-finites through the one
		// helper keeps the guards consistent (and fuzz-pinned) across
		// analytic, scenario, and fluid.
		if finite.IsBad(s) || s <= 0 || s >= 1 {
			return nil, fmt.Errorf("analytic: target signal bss[%d] = %v outside (0,1)", i, s)
		}
		c, err := b.Inverse(s)
		if err != nil {
			return nil, err
		}
		tgts[i] = tgt{orig: i, c: c}
	}
	sort.SliceStable(tgts, func(a, bb int) bool { return tgts[a].c < tgts[bb].c })
	cstar := make([]float64, n)
	for k, t := range tgts {
		cstar[k] = t.c
	}

	var sortedRates []float64
	var err error
	switch disc.(type) {
	case queueing.FairShare:
		sortedRates, err = fairShareRates(cstar, mu)
	case queueing.FIFO:
		sortedRates, err = fifoRates(cstar, mu)
	default:
		return nil, fmt.Errorf("analytic: unsupported discipline %s", disc.Name())
	}
	if err != nil {
		return nil, err
	}
	r := make([]float64, n)
	for k, t := range tgts {
		r[t.orig] = sortedRates[k]
	}
	return r, nil
}

// fairShareRates solves the Fair Share fixed point by forward
// substitution: L_i = g⁻¹(C*_i) with
// L_i·μ = Σ_{k<i} r_k + (N−i)·r_i.
func fairShareRates(cstar []float64, mu float64) ([]float64, error) {
	n := len(cstar)
	r := make([]float64, n)
	prefix := 0.0
	prev := 0.0
	for i := 0; i < n; i++ {
		load := queueing.GInv(cstar[i])
		ri := (mu*load - prefix) / float64(n-i)
		if ri < prev-1e-12 || ri < 0 {
			return nil, fmt.Errorf("analytic: targets infeasible at sorted position %d (rate %v after %v)", i, ri, prev)
		}
		if ri < prev {
			ri = prev // clamp tiny negative ordering noise
		}
		r[i] = ri
		prefix += ri
		prev = ri
	}
	return r, nil
}

// fifoRates solves the FIFO fixed point. With S = ρ_tot, sorted
// loads satisfy Σ_{k<i} ρ_k + (N−i)·ρ_i = C*_i (1−S), so for a trial
// S the loads follow by forward substitution; the consistent S is the
// root of Σ ρ_k(S) − S, found by bisection on (0, 1). The left side
// is decreasing in S while the right side increases, so the root is
// unique.
func fifoRates(cstar []float64, mu float64) ([]float64, error) {
	n := len(cstar)
	loads := make([]float64, n)
	eval := func(s float64) (float64, bool) {
		prefix := 0.0
		prev := 0.0
		ok := true
		for i := 0; i < n; i++ {
			li := (cstar[i]*(1-s) - prefix) / float64(n-i)
			if li < 0 {
				li = 0
				ok = false
			}
			if li < prev {
				li = prev // enforce the sorted order under clamping
			}
			loads[i] = li
			prefix += li
			prev = li
		}
		return prefix, ok
	}
	lo, hi := 0.0, 1.0
	for it := 0; it < 200; it++ {
		mid := 0.5 * (lo + hi)
		sum, _ := eval(mid)
		if sum > mid {
			lo = mid
		} else {
			hi = mid
		}
	}
	s := 0.5 * (lo + hi)
	if _, ok := eval(s); !ok {
		return nil, fmt.Errorf("analytic: FIFO targets infeasible (some implied load negative)")
	}
	r := make([]float64, n)
	for i, li := range loads {
		r[i] = li * mu
	}
	return r, nil
}

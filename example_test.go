package feedbackflow_test

import (
	"fmt"
	"strings"

	ff "github.com/nettheory/feedbackflow"
)

// The canonical scenario: individual feedback with Fair Share gateways
// converges to the unique fair steady state (Theorem 3).
func ExampleNewSystem() {
	net, err := ff.SingleGateway(4, 1.0, 0.1)
	if err != nil {
		panic(err)
	}
	law := ff.AdditiveTSI{Eta: 0.1, BSS: 0.5}
	sys, err := ff.NewSystem(net, ff.FairShare{}, ff.Individual, ff.Rational{}, ff.UniformLaws(law, 4))
	if err != nil {
		panic(err)
	}
	res, err := sys.Run([]float64{0.4, 0.02, 0.1, 0.25}, ff.RunOptions{})
	if err != nil {
		panic(err)
	}
	fmt.Printf("converged=%v rates=%.4f\n", res.Converged, res.Rates)
	// Output:
	// converged=true rates=[0.1250 0.1250 0.1250 0.1250]
}

// The Theorem 2 construction: max-min fairness over bottleneck
// capacities ρ_SS·μ.
func ExampleFairAllocation() {
	var b ff.NetworkBuilder
	slow := b.AddGateway("slow", 1, 0)
	fast := b.AddGateway("fast", 2, 0)
	b.AddConnection(slow, fast) // long connection
	b.AddConnection(slow)       // cross at the slow gateway
	b.AddConnection(fast)       // cross at the fast gateway
	net, err := b.Build()
	if err != nil {
		panic(err)
	}
	r, err := ff.FairAllocation(net, ff.Rational{}, 0.5)
	if err != nil {
		panic(err)
	}
	fmt.Printf("long=%.2f crossSlow=%.2f crossFast=%.2f\n", r[0], r[1], r[2])
	// Output:
	// long=0.25 crossSlow=0.25 crossFast=0.75
}

// The Section 3.4 heterogeneous fixed point, in closed form.
func ExampleAnalyticSteadyState() {
	r, err := ff.AnalyticSteadyState(ff.FairShare{}, []float64{0.7, 0.4}, ff.Rational{}, 1)
	if err != nil {
		panic(err)
	}
	fmt.Printf("greedy=%.2f meek=%.2f\n", r[0], r[1])
	// Output:
	// greedy=0.50 meek=0.20
}

// Stability classification of the Section 3.3 example: unilaterally
// stable but systemically unstable.
func ExampleAnalyzeStability() {
	net, err := ff.SingleGateway(8, 1, 0)
	if err != nil {
		panic(err)
	}
	law := ff.AdditiveTSI{Eta: 1.5, BSS: 0.5}
	sys, err := ff.NewSystem(net, ff.FIFO{}, ff.Aggregate, ff.Rational{}, ff.UniformLaws(law, 8))
	if err != nil {
		panic(err)
	}
	r := make([]float64, 8)
	for i := range r {
		r[i] = 0.5 / 8
	}
	rep, err := ff.AnalyzeStability(sys, r, 1e-7, ff.CentralDiff)
	if err != nil {
		panic(err)
	}
	fmt.Printf("unilateral=%v systemic=%v radius=%.0f\n", rep.Unilateral, rep.Systemic, rep.SpectralRadius)
	// Output:
	// unilateral=true systemic=false radius=11
}

// Declarative scenarios: describe a system as JSON, build, and run.
func ExampleLoadScenario() {
	js := `{
	  "name": "demo",
	  "gateways": [{"name": "gw", "mu": 1.0, "latency": 0.1}],
	  "connections": [
	    {"path": ["gw"], "law": {"kind": "additive", "eta": 0.1, "bss": 0.5}},
	    {"path": ["gw"], "law": {"kind": "additive", "eta": 0.1, "bss": 0.5}}
	  ]
	}`
	spec, err := ff.LoadScenario(strings.NewReader(js))
	if err != nil {
		panic(err)
	}
	sys, r0, err := spec.Build()
	if err != nil {
		panic(err)
	}
	res, err := sys.Run(r0, spec.RunOptions())
	if err != nil {
		panic(err)
	}
	fmt.Printf("%s: converged=%v rates=%.2f\n", spec.Name, res.Converged, res.Rates)
	// Output:
	// demo: converged=true rates=[0.25 0.25]
}

// Classifying the Section 3.3 recursion at a chaotic parameter.
func ExampleClassifyOrbit() {
	m := ff.SymmetricRecursion(2.9/100, 0.25, 100) // ηN = 2.9
	cls, err := ff.ClassifyOrbit(m, 0.0055)
	if err != nil {
		panic(err)
	}
	fmt.Printf("class=%s lyapunovPositive=%v\n", cls.Class, cls.Lyapunov > 0)
	// Output:
	// class=chaotic lyapunovPositive=true
}

// Package feedbackflow is a Go reproduction of Scott Shenker's
// "A Theoretical Analysis of Feedback Flow Control" (ACM SIGCOMM
// 1990). It implements the paper's synchronous model of feedback flow
// control — Poisson sources, exponential-server gateways under FIFO or
// Fair Share service, aggregate or individual congestion signalling,
// and local rate-adjustment laws — together with the analysis
// machinery (fair-allocation construction, linear stability, iterated-
// map dynamics) and a packet-level discrete-event simulator that
// validates the analytic queue models.
//
// This package is the public facade: it re-exports the library's
// user-facing types and entry points so applications import a single
// path. The implementation lives in internal/ packages, organized one
// subsystem per package (see DESIGN.md for the inventory).
//
// # Quick start
//
// Build a network, pick a design point in the paper's 2×2 space
// ({aggregate, individual} feedback × {FIFO, Fair Share} gateways),
// attach a rate-adjustment law, and iterate to steady state:
//
//	net, _ := feedbackflow.SingleGateway(4, 1.0, 0.1)
//	law := feedbackflow.AdditiveTSI{Eta: 0.1, BSS: 0.5}
//	sys, _ := feedbackflow.NewSystem(net, feedbackflow.FairShare{},
//		feedbackflow.Individual, feedbackflow.Rational{},
//		feedbackflow.UniformLaws(law, 4))
//	res, _ := sys.Run([]float64{0.1, 0.2, 0.05, 0.3}, feedbackflow.RunOptions{})
//	// res.Rates is the unique fair steady state (Theorem 3).
package feedbackflow

import (
	"context"
	"io"

	"github.com/nettheory/feedbackflow/internal/analytic"
	"github.com/nettheory/feedbackflow/internal/control"
	"github.com/nettheory/feedbackflow/internal/core"
	"github.com/nettheory/feedbackflow/internal/dynamics"
	"github.com/nettheory/feedbackflow/internal/eventsim"
	"github.com/nettheory/feedbackflow/internal/experiments"
	"github.com/nettheory/feedbackflow/internal/fairness"
	"github.com/nettheory/feedbackflow/internal/fault"
	"github.com/nettheory/feedbackflow/internal/game"
	"github.com/nettheory/feedbackflow/internal/obs"
	"github.com/nettheory/feedbackflow/internal/queueing"
	"github.com/nettheory/feedbackflow/internal/recovery"
	"github.com/nettheory/feedbackflow/internal/scenario"
	"github.com/nettheory/feedbackflow/internal/signal"
	"github.com/nettheory/feedbackflow/internal/stability"
	"github.com/nettheory/feedbackflow/internal/topology"
)

// Topology types: networks of logical gateways (one per directed
// line) carrying a static set of routed connections.
type (
	// Network is an immutable network and traffic topology.
	Network = topology.Network
	// NetworkBuilder assembles a Network gateway by gateway.
	NetworkBuilder = topology.Builder
	// Gateway is one exponential server plus its line latency.
	Gateway = topology.Gateway
)

// Service-discipline types: the queueing models Q(r) of Section 2.2.
type (
	// Discipline maps sending rates to average queue lengths.
	Discipline = queueing.Discipline
	// FIFO is first-in-first-out service: Q_i = ρ_i/(1−ρ_tot).
	FIFO = queueing.FIFO
	// FairShare is the paper's preemptive-priority protective
	// discipline (Table 1).
	FairShare = queueing.FairShare
	// NonPreemptiveFairShare is the A3 ablation: Table 1 priorities
	// without preemption, which breaks the Theorem 5 bound.
	NonPreemptiveFairShare = queueing.NonPreemptiveFairShare
	// QueueingScratch is the reusable sort/prefix working storage of
	// the in-place discipline kernels (see ObserveQueuesInto). The zero
	// value is ready to use.
	QueueingScratch = queueing.Scratch
)

// ObserveQueuesInto evaluates disc's queue lengths and sojourn times
// at (r, mu) into caller-provided buffers q and w (both of length
// len(r)), reusing scr across calls so steady-state evaluation
// performs no allocations. It is the allocation-free counterpart of
// Discipline.Queues/SojournTimes with bit-identical results — the
// O(N log N) prefix-sum kernel behind every Workspace step (see
// docs/PERFORMANCE.md).
func ObserveQueuesInto(disc Discipline, q, w, r []float64, mu float64, scr *QueueingScratch) error {
	return queueing.ObserveInto(disc, q, w, r, mu, scr)
}

// Signalling types: congestion signal functions and feedback styles.
type (
	// SignalFunc is a congestion signal function B: [0,∞] → [0,1].
	SignalFunc = signal.Func
	// Rational is B(C) = C/(1+C), the paper's worked example.
	Rational = signal.Rational
	// PowerSignal is B(C) = (C/(1+C))^K (K=2 drives the chaos example).
	PowerSignal = signal.Power
	// ExponentialSignal is B(C) = 1 − e^(−C/θ).
	ExponentialSignal = signal.Exponential
	// BinarySignal is the DECbit-style threshold bit (outside the
	// paper's B assumptions; drives the E14 oscillation analysis).
	BinarySignal = signal.Binary
	// FeedbackStyle selects aggregate or individual congestion
	// signalling.
	FeedbackStyle = signal.Style
)

// Feedback styles.
const (
	// Aggregate feedback sends every connection the same signal
	// B(Q_tot).
	Aggregate = signal.Aggregate
	// Individual feedback sends connection i the signal
	// B(Σ_k min(Q_k, Q_i)).
	Individual = signal.Individual
)

// Rate-adjustment laws: the source-side functions f(r, b, d) of
// Section 2.3.2.
type (
	// Law is a rate adjustment function f(r, b, d).
	Law = control.Law
	// TSILaw is a law in Theorem 1's time-scale-invariant class.
	TSILaw = control.TSILaw
	// AdditiveTSI is f = η(b_SS − b).
	AdditiveTSI = control.AdditiveTSI
	// MultiplicativeTSI is f = η·r·(b_SS − b).
	MultiplicativeTSI = control.MultiplicativeTSI
	// PowerTSI is f = η·sign(b_SS−b)·|b_SS−b|^P.
	PowerTSI = control.PowerTSI
	// FairRateLIMD is the guaranteed-fair, non-TSI law f=(1−b)η−βbr.
	FairRateLIMD = control.FairRateLIMD
	// WindowLIMD models DECbit/Jacobson window adjustment,
	// f=(1−b)η/d−βbr.
	WindowLIMD = control.WindowLIMD
	// CustomLaw wraps an arbitrary f(r, b, d).
	CustomLaw = control.Custom
)

// Model types: the composed system and its iteration results.
type (
	// System is a fully specified feedback flow control model.
	System = core.System
	// Observation holds signals, delays, and queues at a rate vector.
	Observation = core.Observation
	// RunOptions controls System.Run.
	RunOptions = core.RunOptions
	// RunResult reports a Run's outcome.
	RunResult = core.RunResult
	// RunStats summarizes a run's step count, wall time, and residual
	// trajectory.
	RunStats = core.RunStats
	// WindowSystem models genuine window-based flow control: windows
	// adjusted by the laws, rates solving Little's law r = w/d(r).
	WindowSystem = core.WindowSystem
	// WindowRunResult reports a WindowSystem run.
	WindowRunResult = core.WindowRunResult
	// Workspace holds preallocated iteration buffers so repeated
	// Observe/Step calls on one goroutine are allocation-free; create
	// one per worker with System.NewWorkspace (see docs/PERFORMANCE.md).
	Workspace = core.Workspace
	// StepHook observes and perturbs every iteration step — the seam
	// fault injection plugs into (see docs/ROBUSTNESS.md).
	StepHook = core.StepHook
)

// Fault-injection and recovery types: deterministic perturbation of a
// running system plus recovery analytics (packages internal/fault and
// internal/recovery; see docs/ROBUSTNESS.md).
type (
	// FaultConfig is a deterministic, seeded fault-injection schedule.
	FaultConfig = fault.Config
	// FaultWindow is a half-open [From, To) window of step indices.
	FaultWindow = fault.Window
	// GatewayFault degrades (or, with Factor 0, outs) one gateway.
	GatewayFault = fault.GatewayFault
	// ConnFault applies a connection-level fault during a window.
	ConnFault = fault.ConnFault
	// FaultInjector applies a FaultConfig as a StepHook.
	FaultInjector = fault.Injector
	// FaultResult pairs a baseline and a perturbed run with the fault
	// and recovery reports.
	FaultResult = fault.Result
	// RecoveryAnalysis measures a perturbed trajectory's recovery.
	RecoveryAnalysis = recovery.Report
	// RecoveryOptions parameterizes AnalyzeRecovery.
	RecoveryOptions = recovery.Options
)

// Analysis types.
type (
	// FairnessReport is the result of EvaluateFairness.
	FairnessReport = fairness.Report
	// FairnessViolation is one fairness failure witness.
	FairnessViolation = fairness.Violation
	// StabilityReport classifies a stability matrix DF.
	StabilityReport = stability.Report
	// DiffScheme selects the finite-difference stencil for Jacobians.
	DiffScheme = stability.Scheme
	// Map is a one-dimensional iterated map.
	Map = dynamics.Map
	// OrbitClassification is the asymptotic behavior of a map orbit.
	OrbitClassification = dynamics.Classification
)

// Finite-difference schemes.
const (
	// ForwardDiff probes r_j + h (the branch where the perturbed
	// connection's queue grows — correct at the model's kinks).
	ForwardDiff = stability.Forward
	// BackwardDiff probes r_j − h.
	BackwardDiff = stability.Backward
	// CentralDiff straddles r_j; more accurate on smooth regions.
	CentralDiff = stability.Central
)

// Simulation types.
type (
	// GatewaySimConfig parameterizes a packet-level gateway simulation.
	GatewaySimConfig = eventsim.GatewayConfig
	// GatewaySimResult holds measured queue statistics.
	GatewaySimResult = eventsim.GatewayResult
	// SimDiscipline selects the simulated service discipline.
	SimDiscipline = eventsim.DisciplineKind
	// NetworkSimConfig parameterizes a multi-gateway packet simulation.
	NetworkSimConfig = eventsim.NetworkConfig
	// NetworkSimResult holds per-gateway, per-connection measurements.
	NetworkSimResult = eventsim.NetworkResult
	// NetworkSimGateway describes one simulated gateway.
	NetworkSimGateway = eventsim.NetworkGateway
	// SimMetrics carries the event-level telemetry of one gateway
	// simulation: engine event accounting, packet counts, and the
	// sampled queue-depth distribution.
	SimMetrics = eventsim.SimMetrics
	// SimEngineStats is the event-loop accounting of a simulation run;
	// Scheduled = Fired + Cancelled + Pending always holds.
	SimEngineStats = eventsim.EngineStats
)

// Observability types: step tracing and machine-readable run reports
// (package internal/obs; see docs/OBSERVABILITY.md).
type (
	// StepTracer receives a callback after every iteration step.
	StepTracer = obs.StepTracer
	// StepTracerFunc adapts a function to the StepTracer interface.
	StepTracerFunc = obs.StepFunc
	// TSVTracer streams per-step traces as tab-separated values.
	TSVTracer = obs.TSVTracer
	// RunReport is the machine-readable summary of one Run, written by
	// ffc -metrics-json.
	RunReport = obs.RunReport
	// GatewayReport is the per-gateway block of a RunReport.
	GatewayReport = obs.GatewayReport
	// FaultReport is the injection-accounting block of a perturbed
	// run's RunReport.
	FaultReport = obs.FaultReport
	// RecoveryReport is the recovery-analytics block of a perturbed
	// run's RunReport (RecoveryAnalysis.Publish produces it).
	RecoveryReport = obs.RecoveryReport
)

// NewTSVTracer returns a tracer streaming every'th step to w as TSV.
func NewTSVTracer(w io.Writer, every int) *TSVTracer {
	return obs.NewTSVTracer(w, every)
}

// Simulated disciplines.
const (
	// SimFIFO simulates first-in-first-out service.
	SimFIFO = eventsim.SimFIFO
	// SimFairShare simulates Table 1 preemptive-priority service.
	SimFairShare = eventsim.SimFairShare
)

// Game types: selfish rate-setting at a shared gateway (the [She89]
// motivation for Fair Share).
type (
	// GameConfig fixes a single-gateway rate-setting game: a service
	// discipline, a server rate, and per-player delay sensitivities.
	GameConfig = game.Config
	// GameResult reports a best-response dynamics run.
	GameResult = game.Result
)

// Experiment types: the reproduction harness for every table, figure,
// and theorem of the paper.
type (
	// Experiment is one registered reproduction experiment.
	Experiment = experiments.Spec
	// ExperimentResult is the rendered and checked outcome.
	ExperimentResult = experiments.Result
)

// NewSystem assembles a feedback flow control model from a network, a
// gateway service discipline, a feedback style, a congestion signal
// function, and one rate-adjustment law per connection.
func NewSystem(net *Network, disc Discipline, style FeedbackStyle, b SignalFunc, laws []Law) (*System, error) {
	return core.NewSystem(net, disc, style, b, laws)
}

// UniformLaws assigns the same law to n connections (the homogeneous
// case of most of the paper's analysis).
func UniformLaws(l Law, n int) []Law { return control.Uniform(l, n) }

// ParseFaultSpec parses the compact fault-spec syntax used by
// ffc -fault (e.g. "seed=3,loss=0.5@50-120,outage=0@150-170").
func ParseFaultSpec(spec string) (FaultConfig, error) { return fault.Parse(spec) }

// NewFaultInjector builds the StepHook applying cfg to a system with
// the given shape.
func NewFaultInjector(cfg FaultConfig, nConns, nGateways int) (*FaultInjector, error) {
	return fault.NewInjector(cfg, nConns, nGateways)
}

// RunPerturbed runs sys to its unperturbed baseline, reruns it under
// the faults of cfg, and reports what the injection did and how the
// system recovered.
func RunPerturbed(sys *System, r0 []float64, cfg FaultConfig, opt RunOptions) (*FaultResult, error) {
	return fault.RunPerturbed(sys, r0, cfg, opt)
}

// AnalyzeRecovery measures how the recorded trajectory of a perturbed
// run recovers toward the unperturbed baseline rates.
func AnalyzeRecovery(traj [][]float64, baseline []float64, opts RecoveryOptions) (*RecoveryAnalysis, error) {
	return recovery.Analyze(traj, baseline, opts)
}

// NewWindowSystem wraps a System in genuine window-based dynamics:
// sys's laws are reinterpreted as window adjustments f(w, b, d), and
// sending rates solve the Little's-law fixed point r = w/d(r).
func NewWindowSystem(sys *System) (*WindowSystem, error) {
	return core.NewWindowSystem(sys)
}

// SingleGateway builds n connections sharing one gateway of rate mu
// and line latency latency — the paper's canonical example network.
func SingleGateway(n int, mu, latency float64) (*Network, error) {
	return topology.SingleGateway(n, mu, latency)
}

// ParkingLot builds the classic multi-bottleneck line: hops gateways,
// one long connection through all of them, one cross connection each.
func ParkingLot(hops int, mu, latency float64) (*Network, error) {
	return topology.ParkingLot(hops, mu, latency)
}

// Star builds leaves leaf gateways feeding a shared hub gateway.
func Star(leaves int, leafMu, hubMu, latency float64) (*Network, error) {
	return topology.Star(leaves, leafMu, hubMu, latency)
}

// Ring builds a cycle of size gateways with one connection entering at
// each gateway and traversing hops consecutive gateways.
func Ring(size, hops int, mu, latency float64) (*Network, error) {
	return topology.Ring(size, hops, mu, latency)
}

// Dumbbell builds pairs of access gateways joined by one shared
// bottleneck gateway, one connection per pair.
func Dumbbell(pairs int, accessMu, bottleneckMu, latency float64) (*Network, error) {
	return topology.Dumbbell(pairs, accessMu, bottleneckMu, latency)
}

// WriteDOT renders a network as a Graphviz digraph (gateways as boxes,
// one colored path per connection) for visualization.
func WriteDOT(w io.Writer, net *Network, name string) error {
	return topology.WriteDOT(w, net, name)
}

// FairAllocation computes the unique fair steady state of Theorem 2
// for signal function b and steady-state signal bss on net.
func FairAllocation(net *Network, b SignalFunc, bss float64) ([]float64, error) {
	return fairness.FairAllocation(net, b, bss)
}

// EvaluateFairness applies the Section 2.4.2 fairness criterion to a
// rate vector, given the system's observation at those rates.
func EvaluateFairness(sys *System, obs *Observation, r []float64, tol float64) (FairnessReport, error) {
	return fairness.Evaluate(sys, obs, r, tol)
}

// JainIndex returns Jain's fairness index (Σr)²/(N·Σr²).
func JainIndex(r []float64) float64 { return fairness.JainIndex(r) }

// AnalyticSteadyState solves, in closed form, the single-gateway
// individual-feedback fixed point for per-connection target signals
// bss (heterogeneous TSI laws), providing an independent cross-check
// on iterated dynamics. Supported disciplines: FIFO, FairShare.
func AnalyticSteadyState(disc Discipline, bss []float64, b SignalFunc, mu float64) ([]float64, error) {
	return analytic.SteadyState(disc, bss, b, mu)
}

// AnalyzeStability computes the stability matrix DF of sys at rate
// vector r by numerical differentiation (step h, given scheme) and
// classifies it: unilateral vs systemic stability, spectral radius,
// and Theorem 4 triangular structure.
func AnalyzeStability(sys *System, r []float64, h float64, scheme DiffScheme) (*StabilityReport, error) {
	df, err := stability.Jacobian(sys.StepFunc(), r, h, scheme)
	if err != nil {
		return nil, err
	}
	return stability.Analyze(df, 1e-5)
}

// SimulateGateway runs the packet-level discrete-event simulation of
// one gateway and returns measured per-connection queue statistics,
// for validating the analytic Q(r) models.
func SimulateGateway(cfg GatewaySimConfig) (*GatewaySimResult, error) {
	return eventsim.SimulateGateway(cfg)
}

// Window-simulation types: closed-loop packet-level window flow
// control.
type (
	// WindowSimConfig parameterizes a packet-level window simulation.
	WindowSimConfig = eventsim.WindowGatewayConfig
	// WindowSimResult holds the measurements.
	WindowSimResult = eventsim.WindowGatewayResult
)

// SimulateWindowGateway runs a closed-loop packet-level window flow
// control simulation: each connection keeps a fixed window in flight,
// releasing the next packet when the previous one's round trip
// completes.
func SimulateWindowGateway(cfg WindowSimConfig) (*WindowSimResult, error) {
	return eventsim.SimulateWindowGateway(cfg)
}

// ReplicatedSimResult aggregates independent simulation replications.
type ReplicatedSimResult = eventsim.ReplicatedResult

// ReplicateGateway runs k independent replications of a gateway
// simulation (seeds cfg.Seed .. cfg.Seed+k−1) and returns pooled
// means with cross-replication confidence intervals.
func ReplicateGateway(cfg GatewaySimConfig, k int) (*ReplicatedSimResult, error) {
	return eventsim.Replicate(cfg, k)
}

// ReplicateGatewayParallel is ReplicateGateway with the replications
// distributed over at most workers goroutines (0 means one per CPU).
// Each replication owns its seeded RNG and results are aggregated in
// replication order, so the result is bit-identical to the sequential
// ReplicateGateway for any worker count.
func ReplicateGatewayParallel(cfg GatewaySimConfig, k, workers int) (*ReplicatedSimResult, error) {
	return eventsim.ReplicateParallel(cfg, k, workers)
}

// SimulateNetwork runs a multi-gateway packet-level simulation in
// which downstream gateways see the actual departure processes of
// upstream ones, quantifying the paper's Poisson-output approximation
// (exact for FIFO by Burke's theorem).
func SimulateNetwork(cfg NetworkSimConfig) (*NetworkSimResult, error) {
	return eventsim.SimulateNetwork(cfg)
}

// SequentialBestResponse runs round-robin best-response dynamics for
// the selfish rate-setting game: each player in turn replaces its rate
// with the maximizer of U_i = r_i − α_i·W_i given the others.
func SequentialBestResponse(cfg GameConfig, r0 []float64, maxRounds int, tol float64) (*GameResult, error) {
	return game.SequentialBestResponse(cfg, r0, maxRounds, tol)
}

// NashGap returns the largest unilateral utility improvement available
// at profile r — zero exactly at a Nash equilibrium of the selfish
// rate-setting game.
func NashGap(cfg GameConfig, r []float64) (float64, error) {
	return game.NashGap(cfg, r)
}

// ClassifyOrbit determines the asymptotic behavior (fixed point,
// periodic, chaotic, divergent) of the one-dimensional map m from x0,
// with default burn-in and detection settings.
func ClassifyOrbit(m Map, x0 float64) (OrbitClassification, error) {
	return dynamics.Classify(m, x0, dynamics.ClassifyOptions{})
}

// SymmetricRecursion is the Section 3.3 symmetric reduction of
// aggregate feedback with the squared rational signal:
// r' = r + η(β − (N·r)²). See the E6 experiment.
func SymmetricRecursion(eta, beta float64, n int) Map {
	return experiments.SymmetricRecursion(eta, beta, n)
}

// Scenario is a declarative JSON description of a complete system:
// topology, discipline, signalling, and per-connection laws.
type Scenario = scenario.Spec

// LoadScenario parses a declarative scenario from JSON (with unknown
// fields rejected). Build it with Scenario.Build.
func LoadScenario(r io.Reader) (*Scenario, error) {
	return scenario.Load(r)
}

// Experiments returns the full reproduction suite (E1–E20 plus
// ablations), ordered by ID.
func Experiments() []Experiment { return experiments.All() }

// ExperimentOutcome pairs one experiment with its Result or the error
// that prevented one.
type ExperimentOutcome = experiments.Outcome

// RunAllExperiments runs the whole suite and returns one outcome per
// experiment in Experiments() order. With workers > 1 the experiments
// run concurrently (0 means one worker per CPU); exhibits and checks
// are unaffected, but the per-experiment wall-time and allocation
// telemetry then reflects process-wide activity. A failing experiment
// does not stop the others.
func RunAllExperiments(ctx context.Context, workers int) []ExperimentOutcome {
	return experiments.RunAll(ctx, workers)
}

// RunExperiment runs the experiment with the given ID (e.g. "E5").
func RunExperiment(id string) (*ExperimentResult, error) {
	spec, ok := experiments.Lookup(id)
	if !ok {
		return nil, &UnknownExperimentError{ID: id}
	}
	return spec.Run()
}

// WriteExperimentReports encodes one machine-readable report per
// experiment result as an indented JSON array — the payload behind
// fftables -metrics-json. Unlike the rendered exhibits, reports carry
// the structured check outcomes plus the wall time and allocation
// telemetry captured by the experiment registry.
func WriteExperimentReports(w io.Writer, results []*ExperimentResult) error {
	return experiments.WriteReports(w, results)
}

// UnknownExperimentError reports a RunExperiment ID that is not in the
// registry.
type UnknownExperimentError struct{ ID string }

// Error implements error.
func (e *UnknownExperimentError) Error() string {
	return "feedbackflow: unknown experiment " + e.ID
}

module github.com/nettheory/feedbackflow

go 1.22

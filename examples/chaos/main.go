// Chaos: the Section 3.3 aside made visible. With the squared
// rational signal, N identical sources under aggregate feedback reduce
// (from a symmetric start) to the one-dimensional recursion
// r' = r + η(β − (N·r)²). As N grows at fixed gain the steady state
// loses stability at ηN = 2 and the orbit period-doubles its way to
// chaos — the classic Collet–Eckmann route the paper cites.
package main

import (
	"fmt"
	"log"
	"math"
	"strings"

	ff "github.com/nettheory/feedbackflow"
)

const (
	eta  = 0.05
	beta = 0.25
)

func main() {
	fmt.Println("orbit class of r' = r + η(β − (N·r)²) as N grows (η=0.05, β=1/4)")
	fmt.Printf("%-5s %-6s %-12s %-7s %s\n", "N", "ηN", "class", "period", "Lyapunov")
	for _, n := range []int{10, 20, 30, 40, 44, 50, 54, 58} {
		m := ff.SymmetricRecursion(eta, beta, n)
		cls, err := ff.ClassifyOrbit(m, math.Sqrt(beta)/float64(n)*1.1)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-5d %-6.2f %-12s %-7d %+.3f\n",
			n, eta*float64(n), cls.Class, cls.Period, cls.Lyapunov)
	}

	// A poor man's bifurcation diagram: attractor samples of N·r as
	// ηN sweeps through the cascade, rendered as one text column per
	// parameter value.
	fmt.Println("\nattractor of N·r (columns: ηN from 1.6 to 2.9)")
	const (
		rows = 18
		lo   = 0.0
		hi   = 0.8
	)
	grid := make([][]byte, rows)
	for r := range grid {
		grid[r] = []byte(strings.Repeat(" ", 65))
	}
	col := 0
	for etaN := 1.6; etaN <= 2.9 && col < 65; etaN += 0.02 {
		n := 100
		m := ff.SymmetricRecursion(etaN/float64(n), beta, n)
		x := math.Sqrt(beta) / float64(n) * 1.1
		for burn := 0; burn < 4000; burn++ {
			x = m(x)
		}
		for keep := 0; keep < 40; keep++ {
			x = m(x)
			v := float64(n) * x
			if v < lo || v >= hi || math.IsNaN(v) {
				continue
			}
			row := rows - 1 - int((v-lo)/(hi-lo)*float64(rows))
			if row >= 0 && row < rows {
				grid[row][col] = '*'
			}
		}
		col++
	}
	for _, line := range grid {
		fmt.Printf("  |%s|\n", line)
	}
	fmt.Println("   ηN: 1.6 ----------------- 2.0 (doubling) ------- 2.45 (4-cycle) --- 2.9")
	fmt.Println("\nnote: the model's max(0,·) truncation replaces the chaotic band with a")
	fmt.Println("superstable cycle through r=0 — run experiment E6 (cmd/fftables) for details")
}

// Simvalidation: the analytic queue models against the packet-level
// simulator. The paper's analysis rests on closed-form Q(r) for FIFO
// (M/M/1 decomposition) and Fair Share (preemptive-priority
// recursion); this example measures both with a discrete-event
// simulation of actual Poisson packet arrivals and exponential
// service, including the overload case where Fair Share protects the
// low-rate connection and FIFO drowns it.
package main

import (
	"fmt"
	"log"
	"math"

	ff "github.com/nettheory/feedbackflow"
)

func main() {
	compare("stable, skewed rates", []float64{0.05, 0.2, 0.4}, 1.0)
	compare("overload: conn 1 floods the gateway", []float64{0.1, 1.5}, 1.0)
}

func compare(label string, rates []float64, mu float64) {
	fmt.Printf("== %s (rates %v, μ=%g) ==\n", label, rates, mu)
	for _, d := range []struct {
		analytic ff.Discipline
		kind     ff.SimDiscipline
	}{
		{ff.FIFO{}, ff.SimFIFO},
		{ff.FairShare{}, ff.SimFairShare},
	} {
		want, err := d.analytic.Queues(rates, mu)
		if err != nil {
			log.Fatal(err)
		}
		res, err := ff.SimulateGateway(ff.GatewaySimConfig{
			Rates:      rates,
			Mu:         mu,
			Discipline: d.kind,
			Seed:       42,
			Duration:   40000,
		})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%s:\n", d.analytic.Name())
		for i := range rates {
			analytic := fmt.Sprintf("%8.4f", want[i])
			if math.IsInf(want[i], 1) {
				analytic = "    +Inf"
			}
			fmt.Printf("  conn %d: analytic %s   simulated %8.4f ± %.4f   served %d\n",
				i, analytic, res.MeanQueue[i], res.QueueCI[i].HalfWide, res.Served[i])
		}
	}
	fmt.Println()
}

// Quickstart: build the paper's canonical scenario — several
// connections sharing one gateway — pick the winning design point
// (individual feedback + Fair Share gateways), and iterate the
// synchronous rate-adjustment procedure to its unique fair steady
// state (Theorem 3).
package main

import (
	"fmt"
	"log"

	ff "github.com/nettheory/feedbackflow"
)

func main() {
	// Four connections share a gateway with service rate μ = 1 packet
	// per time unit and line latency 0.1.
	net, err := ff.SingleGateway(4, 1.0, 0.1)
	if err != nil {
		log.Fatal(err)
	}

	// Every source runs the TSI law f = η(b_SS − b): increase the rate
	// while the congestion signal is below the target b_SS, back off
	// above it.
	law := ff.AdditiveTSI{Eta: 0.1, BSS: 0.5}
	sys, err := ff.NewSystem(net, ff.FairShare{}, ff.Individual, ff.Rational{},
		ff.UniformLaws(law, net.NumConnections()))
	if err != nil {
		log.Fatal(err)
	}

	// Start from wildly unequal rates.
	start := []float64{0.40, 0.02, 0.10, 0.25}
	res, err := sys.Run(start, ff.RunOptions{})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("converged: %v after %d steps\n", res.Converged, res.Steps)
	fmt.Println("conn  start    steady-state  signal b_i")
	for i, r := range res.Rates {
		fmt.Printf("%4d  %.4f   %.6f      %.4f\n", i, start[i], r, res.Final.Signals[i])
	}

	// Theorem 3: the steady state is fair — everyone gets b_SS·μ/N.
	rep, err := ff.EvaluateFairness(sys, res.Final, res.Rates, 1e-6)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("fair: %v (Jain index %.4f); theory predicts r_i = %.4f each\n",
		rep.Fair, rep.JainIndex, 0.5*1.0/4)

	// And it matches the closed-form Theorem 2 construction.
	want, err := ff.FairAllocation(net, ff.Rational{}, 0.5)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Theorem 2 construction: %v\n", want)
}

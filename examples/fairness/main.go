// Fairness: aggregate versus individual feedback on a multi-bottleneck
// "parking lot" network. Aggregate feedback converges onto a manifold
// of steady states — where you end up (and how unfair it is) depends
// on where you start — while individual feedback always lands on the
// single fair allocation of Theorems 2 and 3, under either gateway
// discipline.
package main

import (
	"fmt"
	"log"
	"math/rand"

	ff "github.com/nettheory/feedbackflow"
)

const bss = 0.5

func main() {
	// Three gateways in a line; connection 0 crosses all of them, plus
	// one short cross connection per hop.
	net, err := ff.ParkingLot(3, 1.0, 0.1)
	if err != nil {
		log.Fatal(err)
	}
	n := net.NumConnections()
	rng := rand.New(rand.NewSource(7))
	starts := make([][]float64, 3)
	for k := range starts {
		starts[k] = make([]float64, n)
		for i := range starts[k] {
			starts[k][i] = 0.01 + rng.Float64()*0.2
		}
	}

	fmt.Println("== aggregate feedback (FIFO gateways) ==")
	law := ff.AdditiveTSI{Eta: 0.1, BSS: bss}
	agg, err := ff.NewSystem(net, ff.FIFO{}, ff.Aggregate, ff.Rational{}, ff.UniformLaws(law, n))
	if err != nil {
		log.Fatal(err)
	}
	for k, r0 := range starts {
		report(agg, r0, fmt.Sprintf("start %d", k))
	}
	fmt.Println("-> same Σr at each bottleneck, different (unfair) splits: a steady-state manifold")

	fmt.Println("\n== individual feedback ==")
	for _, disc := range []ff.Discipline{ff.FIFO{}, ff.FairShare{}} {
		ind, err := ff.NewSystem(net, disc, ff.Individual, ff.Rational{}, ff.UniformLaws(law, n))
		if err != nil {
			log.Fatal(err)
		}
		for k, r0 := range starts {
			report(ind, r0, fmt.Sprintf("%s start %d", disc.Name(), k))
		}
	}

	want, err := ff.FairAllocation(net, ff.Rational{}, bss)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("-> every run matches the Theorem 2 fair construction %v\n", fmtRates(want))
}

func report(sys *ff.System, r0 []float64, label string) {
	res, err := sys.Run(r0, ff.RunOptions{MaxSteps: 300000})
	if err != nil {
		log.Fatal(err)
	}
	rep, err := ff.EvaluateFairness(sys, res.Final, res.Rates, 1e-4)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%-18s rates=%s Jain=%.4f fair=%v\n", label, fmtRates(res.Rates), rep.JainIndex, rep.Fair)
}

func fmtRates(r []float64) string {
	s := "["
	for i, v := range r {
		if i > 0 {
			s += " "
		}
		s += fmt.Sprintf("%.4f", v)
	}
	return s + "]"
}

// Greed: what happens when sources stop cooperating. Instead of
// running a flow-control law, each source selfishly picks the rate
// maximizing its own utility U = r − α·W (throughput minus a delay
// penalty) at a shared gateway — the setting of "Making Greed Work in
// Networks" [She89], the paper's cited origin for the Fair Share
// discipline.
//
// Under FIFO the delay is a commons: any division of the capacity is
// an equilibrium, and whoever moves first takes everything. Under Fair
// Share each connection's delay is its own doing, and best-response
// dynamics converge to one nearly-fair equilibrium from any start.
package main

import (
	"fmt"
	"log"

	ff "github.com/nettheory/feedbackflow"
)

func main() {
	const (
		mu    = 1.0
		alpha = 0.04
	)
	starts := [][]float64{
		{0, 0, 0},         // everyone silent: first mover advantage
		{0.8, 0.01, 0.01}, // player 0 already hogging
		{0.1, 0.4, 0.2},   // mixed
	}
	for _, disc := range []ff.Discipline{ff.FIFO{}, ff.FairShare{}} {
		cfg := ff.GameConfig{Disc: disc, Mu: mu, Alpha: []float64{alpha, alpha, alpha}}
		fmt.Printf("== %s gateway ==\n", disc.Name())
		for k, r0 := range starts {
			res, err := ff.SequentialBestResponse(cfg, r0, 300, 1e-9)
			if err != nil {
				log.Fatal(err)
			}
			gap, err := ff.NashGap(cfg, res.Rates)
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("  start %d -> equilibrium [%.3f %.3f %.3f]  Jain %.4f  (Nash gap %.1e)\n",
				k, res.Rates[0], res.Rates[1], res.Rates[2], ff.JainIndex(res.Rates), gap)
		}
	}
	fmt.Println()
	fmt.Println("a delay-insensitive hog (α=1e-4) against a sensitive player (α=0.04):")
	for _, disc := range []ff.Discipline{ff.FIFO{}, ff.FairShare{}} {
		cfg := ff.GameConfig{Disc: disc, Mu: mu, Alpha: []float64{1e-4, alpha}}
		res, err := ff.SequentialBestResponse(cfg, []float64{0.1, 0.1}, 300, 1e-9)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %-10s hog %.3f, sensitive player %.3f\n", disc.Name(), res.Rates[0], res.Rates[1])
	}
	fmt.Println("\nonly the Fair Share gateway makes greed compatible with fairness")
}

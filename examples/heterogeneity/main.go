// Heterogeneity: what happens when sources do NOT all run the same
// flow-control algorithm (Section 3.4 of the paper). Two "greedy"
// sources target a high congestion signal, two "meek" sources a low
// one. Under aggregate feedback the meek sources are starved to zero;
// under individual feedback with FIFO gateways they survive but fall
// below the reservation floor μ/N-equivalent; with Fair Share gateways
// everyone is guaranteed at least their reservation throughput.
package main

import (
	"fmt"
	"log"

	ff "github.com/nettheory/feedbackflow"
)

func main() {
	const (
		mu        = 1.0
		greedyBSS = 0.7
		meekBSS   = 0.4
	)
	net, err := ff.SingleGateway(4, mu, 0.1)
	if err != nil {
		log.Fatal(err)
	}
	laws := []ff.Law{
		ff.AdditiveTSI{Eta: 0.05, BSS: greedyBSS},
		ff.AdditiveTSI{Eta: 0.05, BSS: greedyBSS},
		ff.AdditiveTSI{Eta: 0.05, BSS: meekBSS},
		ff.AdditiveTSI{Eta: 0.05, BSS: meekBSS},
	}
	// The robustness benchmark: each connection alone at a server of
	// rate μ/N would settle at b_SS·μ/N under the rational signal.
	floors := []float64{greedyBSS * mu / 4, greedyBSS * mu / 4, meekBSS * mu / 4, meekBSS * mu / 4}

	designs := []struct {
		label string
		style ff.FeedbackStyle
		disc  ff.Discipline
	}{
		{"aggregate + FIFO", ff.Aggregate, ff.FIFO{}},
		{"individual + FIFO", ff.Individual, ff.FIFO{}},
		{"individual + FairShare", ff.Individual, ff.FairShare{}},
	}

	fmt.Println("two greedy sources (b_SS=0.7) vs two meek sources (b_SS=0.4), μ=1")
	fmt.Printf("reservation floors: %v\n\n", floors)
	for _, d := range designs {
		sys, err := ff.NewSystem(net, d.disc, d.style, ff.Rational{}, laws)
		if err != nil {
			log.Fatal(err)
		}
		res, err := sys.Run([]float64{0.1, 0.1, 0.1, 0.1}, ff.RunOptions{MaxSteps: 400000})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-24s converged=%v\n", d.label, res.Converged)
		for i, r := range res.Rates {
			status := "meets floor"
			switch {
			case r < 1e-9:
				status = "STARVED"
			case r < floors[i]-1e-6:
				status = "below floor"
			}
			fmt.Printf("    conn %d: rate %.5f (floor %.3f) %s\n", i, r, floors[i], status)
		}
	}
	fmt.Println("\nonly individual feedback + Fair Share is robust (Theorem 5)")
}

// Scenario: drive the library from a declarative JSON description
// instead of code. The scenario below is embedded for self-containment;
// cmd/ffc -config <file> runs the same format from disk (see the
// scenarios/ directory for samples).
package main

import (
	"fmt"
	"log"
	"strings"

	ff "github.com/nettheory/feedbackflow"
)

const scenarioJSON = `{
  "name": "heterogeneous mix on a two-gateway line",
  "discipline": "fairshare",
  "feedback": "individual",
  "gateways": [
    {"name": "edge", "mu": 2.0, "latency": 0.1},
    {"name": "core", "mu": 1.0, "latency": 0.3}
  ],
  "connections": [
    {"path": ["edge", "core"], "law": {"kind": "additive", "eta": 0.05, "bss": 0.6}},
    {"path": ["edge", "core"], "law": {"kind": "additive", "eta": 0.05, "bss": 0.4}},
    {"path": ["edge"],         "law": {"kind": "multiplicative", "eta": 0.2, "bss": 0.5}}
  ]
}`

func main() {
	spec, err := ff.LoadScenario(strings.NewReader(scenarioJSON))
	if err != nil {
		log.Fatal(err)
	}
	sys, r0, err := spec.Build()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("scenario %q: %d gateways, %d connections, %s gateways, %s feedback\n",
		spec.Name, sys.Network().NumGateways(), sys.Network().NumConnections(),
		sys.Discipline().Name(), sys.Style())

	res, err := sys.Run(r0, spec.RunOptions())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("converged=%v after %d steps\n", res.Converged, res.Steps)
	for i, r := range res.Rates {
		fmt.Printf("  conn %d (%s): rate %.5f, signal %.4f, delay %.4f\n",
			i, sys.Law(i).Name(), r, res.Final.Signals[i], res.Final.Delays[i])
	}

	rep, err := ff.EvaluateFairness(sys, res.Final, res.Rates, 1e-6)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("fairness report: fair=%v Jain=%.4f (heterogeneous targets make unequal rates expected)\n",
		rep.Fair, rep.JainIndex)
}
